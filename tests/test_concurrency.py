"""Concurrent-writer regressions: allocators, misuse detection, the
bank-transfer stress oracle, and group-commit coordination.

Everything here drives the *same* engine objects from many threads —
the thread-safe MVCC commit pipeline is the contract under test, under
all three durability modes and all three group-commit policies.
"""

import random
import threading

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.core.nvm_catalog import PersistentCidStore, PersistentTidAllocator
from repro.core.sharding import ShardedEngine
from repro.query.predicate import Eq
from repro.storage.types import DataType
from repro.txn.errors import ConcurrentTransactionUse, TransactionConflict
from repro.txn.manager import VolatileCidStore, VolatileTidAllocator

from tests.conftest import make_config

THREADS = 16


def _hammer(n_threads, fn):
    """Run ``fn(thread_index)`` on ``n_threads`` started together."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def run(i):
        barrier.wait()
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestAllocators:
    """tid/cid allocation must stay unique and monotonic under races."""

    def test_volatile_tids_unique_across_threads(self):
        alloc = VolatileTidAllocator()
        drawn = [[] for _ in range(THREADS)]
        _hammer(THREADS, lambda i: drawn[i].extend(alloc.next() for _ in range(500)))
        flat = [t for per in drawn for t in per]
        assert len(set(flat)) == len(flat) == THREADS * 500
        assert min(flat) >= 1

    def test_persistent_tids_unique_across_threads(self, pool):
        root = pool.allocate(64)
        alloc = PersistentTidAllocator(pool, root)
        drawn = [[] for _ in range(THREADS)]
        # 300 draws per thread crosses several 1024-tid reservation
        # extensions, racing the NVM write with plain increments.
        _hammer(THREADS, lambda i: drawn[i].extend(alloc.next() for _ in range(300)))
        flat = [t for per in drawn for t in per]
        assert len(set(flat)) == len(flat) == THREADS * 300

    def test_volatile_cid_advance_never_goes_backwards(self):
        store = VolatileCidStore()
        cids = list(range(1, THREADS * 200 + 1))
        random.Random(3).shuffle(cids)
        chunks = [cids[i::THREADS] for i in range(THREADS)]
        _hammer(
            THREADS,
            lambda i: [store.advance(c) for c in chunks[i]],
        )
        assert store.last_cid == THREADS * 200

    def test_persistent_cid_advance_never_goes_backwards(self, pool):
        root = pool.allocate(64)
        store = PersistentCidStore(pool, root)
        cids = list(range(1, THREADS * 100 + 1))
        random.Random(5).shuffle(cids)
        chunks = [cids[i::THREADS] for i in range(THREADS)]
        _hammer(
            THREADS,
            lambda i: [store.advance(c) for c in chunks[i]],
        )
        assert store.last_cid == THREADS * 100
        # And the persisted copy matches what re-attach would read.
        assert pool.read_u64(root) == THREADS * 100

    def test_begin_abort_hammer_recycles_slots(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, txn_slots=THREADS * 2),
        )
        _hammer(
            THREADS,
            lambda i: [db.begin().abort() for _ in range(50)],
        )
        assert db._manager.active_count == 0
        db.begin().abort()  # slots all recycled
        db.close()


class TestMisuseDetection:
    def test_one_context_from_two_threads_raises(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()
        # Pin the context to this thread, as if an operation were
        # mid-flight here, then drive it from a second thread.
        txn.ctx.enter_op()
        caught = []

        def other():
            try:
                txn.insert("t", {"a": 1})
            except ConcurrentTransactionUse as exc:
                caught.append(exc)

        worker = threading.Thread(target=other)
        worker.start()
        worker.join()
        txn.ctx.exit_op()
        assert len(caught) == 1
        assert "begin one transaction per thread" in str(caught[0])
        txn.insert("t", {"a": 2})  # same thread still works
        txn.commit()

    def test_same_thread_reentrancy_allowed(self, none_db):
        # update = invalidate + insert nests enter_op on one thread;
        # that must never trip the misuse detector.
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()
        ref = txn.insert("t", {"a": 1})
        txn.update("t", ref, {"a": 2})
        txn.commit()
        assert none_db.query("t", Eq("a", 2)).count == 1

    def test_handoff_between_ops_is_legal(self, none_db):
        # Sequential use from different threads (a worker pool handing
        # a transaction around *between* operations) stays allowed.
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()

        def step(value):
            txn.insert("t", {"a": value})

        for value in (1, 2):
            worker = threading.Thread(target=step, args=(value,))
            worker.start()
            worker.join()
        txn.commit()
        assert none_db.query("t").count == 2


ACCOUNTS = 12
INITIAL = 100
WRITERS = 8
TRANSFERS = 12


def _run_bank(db):
    """N writer threads move money between accounts; total is invariant."""
    db.create_table(
        "acct", {"id": DataType.INT64, "balance": DataType.INT64}
    )
    db.insert_many(
        "acct", [{"id": i, "balance": INITIAL} for i in range(ACCOUNTS)]
    )

    def writer(i):
        rng = random.Random(1000 + i)
        done = 0
        while done < TRANSFERS:
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randint(1, 10)
            txn = db.begin()
            try:
                res_src = txn.query("acct", Eq("id", src))
                res_dst = txn.query("acct", Eq("id", dst))
                ref_src, bal_src = res_src.refs()[0], res_src.column("balance")[0]
                ref_dst, bal_dst = res_dst.refs()[0], res_dst.column("balance")[0]
                txn.update("acct", ref_src, {"balance": bal_src - amount})
                txn.update("acct", ref_dst, {"balance": bal_dst + amount})
                txn.commit()
                done += 1
            except TransactionConflict:
                txn.abort()  # retry with fresh snapshot

    _hammer(WRITERS, writer)
    return db


class TestBankTransferStress:
    """The concurrency oracle: money is conserved under every mode."""

    def _check_invariant(self, db):
        balances = db.query("acct").column("balance")
        assert len(balances) == ACCOUNTS
        assert sum(balances) == ACCOUNTS * INITIAL
        assert db.verify() == []

    def _check(self, db):
        self._check_invariant(db)
        assert db.stats()["commits"] >= WRITERS * TRANSFERS

    def test_conserved_in_every_mode(self, any_db):
        self._check(_run_bank(any_db))

    @pytest.mark.parametrize("group_size", [1, 4, 0], ids=["sync", "batch", "async"])
    def test_conserved_under_every_commit_policy(self, tmp_path, group_size):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, group_commit_size=group_size),
        )
        try:
            self._check(_run_bank(db))
            # Clean restart replays the log: the invariant must also
            # hold in the recovered image (close() syncs, so even the
            # async policy loses nothing on an orderly shutdown).
            db = db.restart()
            self._check_invariant(db)
        finally:
            db.close()

    def test_conserved_after_nvm_restart(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        try:
            self._check(_run_bank(db))
            db = db.restart()
            self._check_invariant(db)
        finally:
            db.close()


class TestGroupCommit:
    def test_leader_fsync_covers_followers(self, tmp_path):
        # Sync commit with a modelled 4 ms device: while the leader
        # sleeps in fsync, other committers queue up and are released
        # by one later fsync — strictly fewer syncs than commits.
        db = Database(
            str(tmp_path / "db"),
            make_config(
                DurabilityMode.LOG,
                group_commit_size=1,
                wal_fsync_delay_s=0.004,
            ),
        )
        db.create_table("t", {"a": DataType.INT64})
        base_syncs = db.stats()["wal"]["syncs"]
        _hammer(6, lambda i: [db.insert("t", {"a": i}) for _ in range(6)])
        stats = db.stats()["wal"]
        assert stats["commits_acked"] == 36
        # Sync policy: every acked commit is durable before the ack.
        assert stats["commits_durable"] == 36
        assert stats["ack_durability_gap"] == 0
        assert stats["syncs"] - base_syncs < 36
        db.close()

    def test_async_mode_surfaces_durability_gap(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, group_commit_size=0),
        )
        db.create_table("t", {"a": DataType.INT64})
        for i in range(15):
            db.insert("t", {"a": i})
        stats = db.stats()["wal"]
        assert stats["commits_acked"] == 15
        assert stats["commits_durable"] == 0  # nothing fsynced yet
        assert stats["ack_durability_gap"] == 15
        db.close()  # close syncs: the gap must drain to zero
        stats = db._driver.extra_stats()["wal"]
        assert stats["commits_durable"] == 15
        assert stats["ack_durability_gap"] == 0

    def test_async_crash_loss_is_bounded_by_last_sync(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, group_commit_size=0),
        )
        db.create_table("t", {"a": DataType.INT64})
        for i in range(5):
            db.insert("t", {"a": i})
        db.checkpoint()  # durability horizon: everything before this
        for i in range(5, 10):
            db.insert("t", {"a": i})
        db.crash()
        recovered = Database(str(tmp_path / "db"), db.config)
        # Acked-but-unsynced commits are lost — that is the contract —
        # but nothing before the checkpoint may be, and the recovered
        # image is consistent.
        assert sorted(recovered.query("t").column("a")) == [0, 1, 2, 3, 4]
        assert recovered.verify() == []
        recovered.close()

    def test_batch_policy_fsyncs_once_per_group(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, group_commit_size=4),
        )
        db.create_table("t", {"a": DataType.INT64})
        base = db.stats()["wal"]["syncs"]
        for i in range(8):
            db.insert("t", {"a": i})
        assert db.stats()["wal"]["syncs"] - base == 2  # 8 commits / 4
        db.close()


class TestShardedWriters:
    def test_writers_per_shard_splits_batches(self, tmp_path):
        engine = ShardedEngine(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, shards=2, writers_per_shard=4),
        )
        engine.create_table(
            "t", {"k": DataType.INT64, "v": DataType.STRING}
        )
        n = engine.insert_many(
            "t", [{"k": i, "v": f"r{i}"} for i in range(300)]
        )
        assert n == 300
        assert engine.query("t").count == 300
        stats = engine.stats()
        # The batch was split across concurrent writer transactions,
        # not committed as one transaction per shard.
        assert stats["commits"] > engine.num_shards
        assert engine.verify() == []
        engine = engine.restart()
        assert engine.query("t").count == 300
        engine.close()

    def test_single_writer_config_unchanged(self, tmp_path):
        engine = ShardedEngine(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, shards=2, writers_per_shard=1),
        )
        engine.create_table("t", {"k": DataType.INT64})
        engine.insert_many("t", [{"k": i} for i in range(40)])
        # One transaction per touched shard, exactly as before.
        assert engine.stats()["commits"] == 2
        assert engine.query("t").count == 40
        engine.close()
