"""Regression tests for crash-path bugs and maintenance-crash coverage.

* The sharded engine must join in-flight fan-out workers *before*
  crashing the shards (pre-fix: ``crash()`` shut the executor down with
  ``wait=False`` afterwards, letting workers persist post-crash state).
* A torn-tail LOG crash must not make post-recovery appends land after
  garbage where replay can never reach them (pre-fix: the writer
  reopened in append mode at the physical end of file).
* A power failure at any point inside ``merge()`` / ``checkpoint()``
  must be logically invisible, for every durability driver, with STRICT
  pmem simulation in NVM mode.
"""

import shutil
import threading

import pytest

from tests.conftest import make_config
from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.core.sharding import ShardedEngine, partition_of
from repro.fault.inject import CrashPointInjector, SimulatedPowerFailure
from repro.nvm.latency import set_persistence_hook
from repro.nvm.pool import PMemMode
from repro.storage.types import DataType

SCHEMA = {"key": DataType.INT64, "note": DataType.STRING}


class TestShardedCrashRace:
    def test_crash_joins_inflight_fanout_workers(self, tmp_path):
        """Crash mid-fan-out: ``crash()`` must wait for running workers.

        A shard worker is stalled inside its commit fsync while the main
        thread calls ``crash()``. Pre-fix, ``crash()`` returned without
        joining it (executor shutdown used ``wait=False``, and only
        after the shards were already crashed), so the release event
        below would still be unset when ``crash()`` returned.
        """
        config = make_config(
            DurabilityMode.LOG, shards=2, group_commit_size=1
        )
        engine = ShardedEngine(str(tmp_path / "db"), config)
        engine.create_table("kv", SCHEMA)

        entered = threading.Event()
        release = threading.Event()

        def stalling_hook(kind: str) -> None:
            # Stall only shard fan-out workers at their commit fsync;
            # the main thread (which runs crash()) never blocks here.
            name = threading.current_thread().name
            if kind == "wal_fsync" and name.startswith("shard"):
                entered.set()
                release.wait(timeout=10.0)

        rows = [{"key": k, "note": f"n{k}"} for k in range(32)]

        def run_batch() -> None:
            try:
                engine.insert_many("kv", rows)
            except BaseException:  # noqa: BLE001 — power failure expected
                pass

        set_persistence_hook(stalling_hook)
        try:
            batch = threading.Thread(target=run_batch, daemon=True)
            batch.start()
            assert entered.wait(5.0), "no shard worker reached its fsync"
            # Release the stalled worker only after crash() has started.
            timer = threading.Timer(0.25, release.set)
            timer.start()
            try:
                engine.crash()
                assert release.is_set(), (
                    "crash() returned while a fan-out worker was still "
                    "writing shard state"
                )
            finally:
                timer.cancel()
        finally:
            release.set()
            set_persistence_hook(None)
        batch.join(5.0)
        assert not batch.is_alive()

        recovered = ShardedEngine(str(tmp_path / "db"), config)
        try:
            assert recovered.verify() == []
            found = {row["key"] for row in recovered.query("kv").rows()}
            # each shard's sub-batch is atomic: fully there or fully not
            for shard in range(2):
                group = {
                    r["key"] for r in rows if partition_of(r["key"], 2) == shard
                }
                assert found & group in (set(), group)
        finally:
            recovered.close()


class TestTornTailRecoveryAppend:
    @pytest.mark.parametrize("survivor", [0.0, 0.5, 1.0])
    def test_appends_after_torn_crash_are_replayable(self, tmp_path, survivor):
        """Records appended after recovering from a torn tail must
        survive the *next* restart.

        Pre-fix, recovery decoded past the torn tail correctly but left
        the garbage bytes in place; the reopened writer appended new
        records after them, where replay (which stops at the garbage)
        could never reach — silently losing every post-recovery commit.
        """
        config = make_config(DurabilityMode.LOG, group_commit_size=1)
        path = str(tmp_path / "db")
        db = Database(path, config)
        db.create_table("kv", SCHEMA)
        db.insert_many("kv", [{"key": k, "note": f"n{k}"} for k in range(8)])
        txn = db.begin()  # in flight at the crash: must roll back
        txn.insert("kv", {"key": 100, "note": "inflight"})
        db.crash(survivor_fraction=survivor, seed=5)

        db2 = Database(path, config)
        assert db2.verify() == []
        assert {r["key"] for r in db2.query("kv").rows()} == set(range(8))
        db2.insert("kv", {"key": 50, "note": "after-crash"})
        db2.close()

        db3 = Database(path, config)
        assert db3.verify() == []
        assert {r["key"] for r in db3.query("kv").rows()} == (
            set(range(8)) | {50}
        )
        db3.close()


class TestBulkLoadCidOrdering:
    def test_every_point_inside_bulk_insert_is_safe(self, tmp_path):
        """Sweep every persistence boundary inside ``bulk_insert``.

        Found by the crash-point sweep: bulk loads bypass the
        transaction table, so the commit id must be durable before the
        begin-vector publish. Pre-fix, the counter advanced *after* the
        publish; a crash in between recovered rows stamped with a
        commit id beyond the engine's ``last_cid``.
        """
        config = _maintenance_config(DurabilityMode.NVM)
        base = {k: f"n{k}" for k in range(4)}
        batch = [{"key": 100 + i, "note": f"b{i}"} for i in range(6)]

        def build(path: str) -> Database:
            db = Database(path, config)
            db.create_table("kv", SCHEMA)
            db.insert_many("kv", [{"key": k, "note": v} for k, v in base.items()])
            return db

        db = build(str(tmp_path / "count"))
        with CrashPointInjector() as counter:
            db.bulk_insert("kv", batch)
        total = counter.events
        db.close()
        assert total > 0

        with_batch = {**base, **{r["key"]: r["note"] for r in batch}}
        for point in range(1, total + 1):
            path = str(tmp_path / f"pt{point}")
            db = build(path)
            with CrashPointInjector(crash_at=point):
                with pytest.raises(SimulatedPowerFailure):
                    db.bulk_insert("kv", batch)
                db.crash(seed=point)
            recovered = Database(path, config)
            assert recovered.verify() == [], f"invariants broken at {point}"
            found = {r["key"]: r["note"] for r in recovered.query("kv").rows()}
            assert found in (base, with_batch), f"torn bulk load at {point}"
            recovered.close()
            shutil.rmtree(path, ignore_errors=True)


# ----------------------------------------------------------------------
# Crashes inside maintenance operations
# ----------------------------------------------------------------------


def _build(path: str, config) -> tuple:
    """Deterministic database with main rows, delta rows, updates and a
    delete — so merge() actually has invalidations to fold."""
    db = Database(path, config)
    db.create_table("kv", SCHEMA)
    db.insert_many("kv", [{"key": k, "note": f"n{k}"} for k in range(8)])
    txn = db.begin()
    ref = txn.query("kv", None).refs()[0]
    txn.update("kv", ref, {"note": "updated"})
    txn.commit()
    txn = db.begin()
    ref = txn.query("kv", None).refs()[-1]
    txn.delete("kv", ref)
    txn.commit()
    expected = {row["key"]: row["note"] for row in db.query("kv").rows()}
    return db, expected


def _maintenance_config(mode: DurabilityMode):
    overrides = {"group_commit_size": 1}
    if mode is DurabilityMode.NVM:
        overrides["pmem_mode"] = PMemMode.STRICT
    return make_config(mode, **overrides)


def _sweep_operation(tmp_path, mode, survivor, operation) -> None:
    """Kill ``operation`` at every persistence boundary; recovered state
    must be unchanged and consistent every time."""
    config = _maintenance_config(mode)

    db, expected = _build(str(tmp_path / "count"), config)
    with CrashPointInjector() as counter:
        operation(db)
    total = counter.events
    db.close()

    assert total > 0  # merge boundary events fire in every mode

    for point in range(1, total + 1):
        path = str(tmp_path / f"pt{point}")
        db, expected = _build(path, config)
        with CrashPointInjector(crash_at=point):
            with pytest.raises(SimulatedPowerFailure):
                operation(db)
            db.crash(survivor_fraction=survivor, seed=point)
        recovered = Database(path, config)
        assert recovered.verify() == [], f"invariants broken at point {point}"
        if mode is DurabilityMode.NONE:
            # Nothing persists: a crash at any boundary loses the lot.
            assert recovered.table_names == []
        else:
            found = {r["key"]: r["note"] for r in recovered.query("kv").rows()}
            assert found == expected, f"state changed by crashed op at {point}"
        recovered.close()
        shutil.rmtree(path, ignore_errors=True)


class TestCrashDuringMerge:
    @pytest.mark.parametrize(
        "mode,survivor",
        [
            (DurabilityMode.NVM, 0.0),
            (DurabilityMode.NVM, 0.5),
            (DurabilityMode.NVM, 1.0),
            (DurabilityMode.LOG, 0.0),
            (DurabilityMode.LOG, 1.0),
            (DurabilityMode.NONE, 0.0),
        ],
        ids=lambda v: str(getattr(v, "value", v)),
    )
    def test_every_point_inside_merge_is_safe(self, tmp_path, mode, survivor):
        _sweep_operation(tmp_path, mode, survivor, lambda db: db.merge("kv"))


class TestCrashDuringCheckpoint:
    @pytest.mark.parametrize("survivor", [0.0, 1.0])
    def test_every_point_inside_checkpoint_is_safe(self, tmp_path, survivor):
        _sweep_operation(
            tmp_path,
            DurabilityMode.LOG,
            survivor,
            lambda db: db.checkpoint(),
        )

    def test_checkpoint_requires_log_mode(self, tmp_path):
        db, _ = _build(str(tmp_path / "db"), _maintenance_config(DurabilityMode.NVM))
        with pytest.raises(RuntimeError):
            db.checkpoint()
        db.close()
