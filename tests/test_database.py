"""Engine-level behaviour tests, run against every durability mode."""

import pytest

from repro.query.predicate import Between, Eq, IsNull
from repro.storage.types import DataType
from repro.txn.errors import TransactionConflict

ITEMS = {"id": DataType.INT64, "name": DataType.STRING, "price": DataType.FLOAT64}


class TestDdl:
    def test_create_and_lookup(self, any_db):
        any_db.create_table("items", ITEMS)
        assert "items" in any_db.table_names
        assert any_db.table("items").schema.names == ["id", "name", "price"]

    def test_duplicate_table_rejected(self, any_db):
        any_db.create_table("items", ITEMS)
        with pytest.raises(ValueError):
            any_db.create_table("items", ITEMS)

    def test_missing_table_helpful_error(self, any_db):
        with pytest.raises(KeyError, match="no table"):
            any_db.table("ghost")

    def test_duplicate_index_rejected(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.create_index("items", "id")
        with pytest.raises(ValueError):
            any_db.create_index("items", "id")


class TestCrud:
    def test_insert_query(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.insert("items", {"id": 1, "name": "anvil", "price": 9.5})
        rows = any_db.query("items").rows()
        assert rows == [{"id": 1, "name": "anvil", "price": 9.5}]

    def test_transactional_visibility(self, any_db):
        any_db.create_table("items", ITEMS)
        txn = any_db.begin()
        txn.insert("items", {"id": 1, "name": "x", "price": 0.0})
        assert any_db.query("items").count == 0  # not yet committed
        assert txn.query("items").count == 1  # own write visible
        txn.commit()
        assert any_db.query("items").count == 1

    def test_context_manager_commits(self, any_db):
        any_db.create_table("items", ITEMS)
        with any_db.begin() as txn:
            txn.insert("items", {"id": 1, "name": "x", "price": 0.0})
        assert any_db.query("items").count == 1

    def test_context_manager_aborts_on_error(self, any_db):
        any_db.create_table("items", ITEMS)
        with pytest.raises(RuntimeError):
            with any_db.begin() as txn:
                txn.insert("items", {"id": 1, "name": "x", "price": 0.0})
                raise RuntimeError("boom")
        assert any_db.query("items").count == 0

    def test_update_and_delete(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.insert("items", {"id": 1, "name": "old", "price": 1.0})
        any_db.insert("items", {"id": 2, "name": "gone", "price": 2.0})
        with any_db.begin() as txn:
            ref = txn.query("items", Eq("id", 1)).refs()[0]
            txn.update("items", ref, {"name": "new"})
            ref2 = txn.query("items", Eq("id", 2)).refs()[0]
            txn.delete("items", ref2)
        assert any_db.query("items").rows() == [
            {"id": 1, "name": "new", "price": 1.0}
        ]

    def test_null_roundtrip(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.insert("items", {"id": 1})
        rows = any_db.query("items", IsNull("price")).rows()
        assert rows == [{"id": 1, "name": None, "price": None}]

    def test_bulk_insert(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert(
            "items",
            [{"id": i, "name": f"n{i}", "price": float(i)} for i in range(100)],
        )
        assert any_db.query("items").count == 100
        assert any_db.query("items", Between("id", 10, 19)).count == 10

    def test_bulk_insert_empty(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert("items", [])
        assert any_db.query("items").count == 0

    def test_conflict_surfaces(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.insert("items", {"id": 1, "name": "x", "price": 0.0})
        ref = any_db.query("items").refs()[0]
        t1 = any_db.begin()
        t2 = any_db.begin()
        t1.delete("items", ref)
        with pytest.raises(TransactionConflict):
            t2.delete("items", ref)
        t1.commit()
        t2.abort()


class TestIndexedQueries:
    def test_index_scan_matches_full_scan(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert(
            "items",
            [{"id": i % 10, "name": f"n{i}", "price": float(i)} for i in range(200)],
        )
        unindexed = sorted(any_db.query("items", Eq("id", 3)).column("price"))
        any_db.create_index("items", "id")
        indexed = sorted(any_db.query("items", Eq("id", 3)).column("price"))
        assert indexed == unindexed
        assert len(indexed) == 20

    def test_index_sees_fresh_inserts(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.create_index("items", "id")
        any_db.insert("items", {"id": 7, "name": "x", "price": 0.0})
        assert any_db.query("items", Eq("id", 7)).count == 1

    def test_index_after_merge(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.create_index("items", "id")
        any_db.bulk_insert(
            "items", [{"id": i, "name": "x", "price": 0.0} for i in range(50)]
        )
        any_db.merge("items")
        assert any_db.query("items", Eq("id", 25)).count == 1
        any_db.insert("items", {"id": 25, "name": "dup", "price": 1.0})
        assert any_db.query("items", Eq("id", 25)).count == 2


class TestMerge:
    def test_merge_moves_rows(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert(
            "items", [{"id": i, "name": "x", "price": 0.0} for i in range(30)]
        )
        any_db.merge("items")
        table = any_db.table("items")
        assert table.main_row_count == 30
        assert table.delta_row_count == 0
        assert any_db.query("items").count == 30

    def test_merge_with_op_holding_txn_times_out(self, any_db):
        any_db.create_table("items", ITEMS)
        # A transaction holding operations on the table blocks the
        # cutover for the whole window; the merge is abandoned with the
        # old generation intact.
        any_db.config.merge_cutover_timeout_s = 0.2
        txn = any_db.begin()
        txn.insert("items", {"id": 1, "name": "x", "price": 0.0})
        with pytest.raises(RuntimeError):
            any_db.merge("items")
        assert any_db.table("items").generation == 0
        txn.commit()
        # With the holder gone the same merge goes through.
        any_db.merge("items")
        assert any_db.table("items").generation == 1
        assert any_db.query("items").count == 1

    def test_merge_compacts_deleted(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert(
            "items", [{"id": i, "name": "x", "price": 0.0} for i in range(10)]
        )
        with any_db.begin() as txn:
            for ref in txn.query("items", Between("id", 0, 4)).refs():
                txn.delete("items", ref)
        any_db.merge("items")
        assert any_db.table("items").main_row_count == 5


class TestStats:
    def test_stats_shape(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.insert("items", {"id": 1, "name": "x", "price": 0.0})
        stats = any_db.stats()
        assert stats["commits"] >= 1
        assert stats["tables"]["items"]["delta_rows"] == 1
        assert stats["mode"] in ("nvm", "log", "none")

    def test_logical_bytes_positive(self, any_db):
        any_db.create_table("items", ITEMS)
        any_db.bulk_insert(
            "items", [{"id": i, "name": "x", "price": 0.0} for i in range(10)]
        )
        assert any_db.logical_bytes() > 0
