"""Edge cases of the engine facade that the main suites don't touch."""

import gc
import os

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database, _coerce_schema
from repro.storage.schema import ColumnDef, Schema
from repro.storage.types import DataType
from repro.txn.errors import TooManyActiveTransactions

from tests.conftest import make_config


class TestSchemaCoercion:
    def test_dict_schema(self):
        schema = _coerce_schema({"a": DataType.INT64})
        assert isinstance(schema, Schema)
        assert schema.names == ["a"]

    def test_schema_passthrough(self):
        schema = Schema([ColumnDef("a", DataType.INT64)])
        assert _coerce_schema(schema) is schema


class TestCheckpointRules:
    def test_checkpoint_rejected_in_nvm_mode(self, nvm_db):
        with pytest.raises(RuntimeError, match="LOG mode"):
            nvm_db.checkpoint()

    def test_checkpoint_rejected_with_active_txn(self, log_db):
        log_db.create_table("t", {"a": DataType.INT64})
        txn = log_db.begin()
        txn.insert("t", {"a": 1})
        with pytest.raises(RuntimeError, match="active"):
            log_db.checkpoint()
        txn.abort()

    def test_empty_database_checkpoint(self, log_db):
        assert log_db.checkpoint() > 0
        db2 = log_db.restart()
        assert db2.table_names == []
        db2.close()
        log_db._closed = True


class TestTransactionHandle:
    def test_tid_exposed(self, none_db):
        txn = none_db.begin()
        assert txn.tid > 0
        txn.abort()

    def test_double_commit_via_context_manager_safe(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        with none_db.begin() as txn:
            txn.insert("t", {"a": 1})
            txn.commit()  # explicit commit inside the with block
        assert none_db.query("t").count == 1

    def test_abort_inside_context_manager(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        with none_db.begin() as txn:
            txn.insert("t", {"a": 1})
            txn.abort()
        assert none_db.query("t").count == 0

    def test_slot_exhaustion_at_engine_level(self, tmp_path):
        db = Database(
            str(tmp_path / "db"), make_config(DurabilityMode.NONE, txn_slots=3)
        )
        handles = [db.begin() for _ in range(3)]
        with pytest.raises(TooManyActiveTransactions):
            db.begin()
        for handle in handles:
            handle.abort()
        db.begin().abort()  # slots recycled
        db.close()


class TestRowValidation:
    def test_insert_type_error_does_not_leak_state(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()
        with pytest.raises(TypeError):
            txn.insert("t", {"a": "string"})
        txn.insert("t", {"a": 1})  # txn still usable
        txn.commit()
        assert none_db.query("t").count == 1

    def test_bulk_insert_validates_all_rows_first(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        with pytest.raises(TypeError):
            none_db.bulk_insert("t", [{"a": 1}, {"a": "bad"}])
        # Validation failed before anything was loaded.
        assert none_db.query("t").count == 0

    def test_unknown_column_in_insert(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()
        with pytest.raises(KeyError):
            txn.insert("t", {"ghost": 1})
        txn.abort()


class TestReopenSafety:
    def test_close_is_idempotent(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        db.close()
        db.close()

    def test_crash_after_close_is_noop(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        db.close()
        db.crash()

    def test_reopen_same_directory_twice(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.NVM)
        db = Database(path, cfg)
        db.create_table("t", {"a": DataType.INT64})
        db.close()
        for _ in range(3):
            db = Database(path, cfg)
            assert db.table_names == ["t"]
            db.close()

    def test_log_mode_empty_directory(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        assert db.last_recovery.log_records_replayed == 0
        assert db.table_names == []
        db.close()


class TestResourceSafety:
    """Leaked-handle and double-close regressions (driver refactor)."""

    @staticmethod
    def _open_fds() -> int:
        return len(os.listdir("/proc/self/fd"))

    def test_close_after_crash_does_not_mark_pool_clean(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.NVM)
        db = Database(path, cfg)
        db.create_table("t", {"a": DataType.INT64})
        db.bulk_insert("t", [{"a": i} for i in range(50)])
        db.crash()
        db.close()  # must be a no-op, not an orderly (clean) shutdown
        extent0 = os.path.join(path, "pmem", "extent_0000.pm")
        with open(extent0, "rb") as f:
            f.seek(48)  # _OFF_CLEAN
            assert int.from_bytes(f.read(8), "little") == 0
        db2 = Database(path, cfg)
        assert db2.query("t").count == 50
        assert db2.verify() == []
        db2.close()

    def test_corrupt_pool_open_releases_all_handles(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, make_config(DurabilityMode.NVM))
        db.create_table("t", {"a": DataType.INT64})
        db.close()
        extent0 = os.path.join(path, "pmem", "extent_0000.pm")
        with open(extent0, "r+b") as f:
            f.write(b"\xde\xad\xbe\xef\xde\xad\xbe\xef")  # smash the magic
        # Settle cycles from earlier tests first: a gen-2 collection
        # firing mid-loop would release their deferred mmap handles and
        # skew the count we are asserting on.
        gc.collect()
        before = self._open_fds()
        for _ in range(5):
            with pytest.raises(Exception, match="magic|corrupt"):
                Database(path, make_config(DurabilityMode.NVM))
        gc.collect()
        assert self._open_fds() == before

    def test_missing_catalog_root_releases_pool(self, tmp_path):
        from repro.nvm.pool import PMemPool

        pool_dir = str(tmp_path / "db" / "pmem")
        os.makedirs(pool_dir)
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        pool.close()  # valid pool, but no catalog root was ever published
        before = self._open_fds()
        with pytest.raises(ValueError, match="no catalog root"):
            Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        assert self._open_fds() == before


class TestMergeEdges:
    def test_merge_unknown_table(self, none_db):
        with pytest.raises(KeyError):
            none_db.merge("ghost")

    def test_merge_empty_table(self, any_db):
        any_db.create_table("t", {"a": DataType.INT64})
        any_db.merge("t")
        assert any_db.table("t").generation == 1
        assert any_db.query("t").count == 0

    def test_repeated_merges(self, any_db):
        any_db.create_table("t", {"a": DataType.INT64})
        for generation in range(1, 4):
            any_db.bulk_insert("t", [{"a": generation}])
            any_db.merge("t")
            assert any_db.table("t").generation == generation
        assert sorted(any_db.query("t").column("a")) == [1, 2, 3]
