"""Unit tests for sorted and unsorted dictionaries."""

import pytest

from repro.storage.backend import NvmBackend, VolatileBackend
from repro.storage.dictionary import SortedDictionary, UnsortedDictionary, hash_key
from repro.storage.types import DataType


@pytest.fixture(params=["volatile", "nvm"])
def backend(request, pool):
    if request.param == "volatile":
        return VolatileBackend()
    return NvmBackend(pool)


class TestUnsortedDictionary:
    def test_first_seen_order(self, backend):
        d = UnsortedDictionary.create(DataType.INT64, backend)
        assert d.code_for_insert(50) == 0
        assert d.code_for_insert(10) == 1
        assert d.code_for_insert(50) == 0
        assert len(d) == 2

    def test_value_roundtrip_types(self, backend):
        for dtype, values in [
            (DataType.INT64, [3, -9, 0]),
            (DataType.FLOAT64, [1.5, -2.25]),
            (DataType.STRING, ["b", "a", "ü"]),
        ]:
            d = UnsortedDictionary.create(dtype, backend)
            codes = [d.code_for_insert(v) for v in values]
            assert [d.value_of(c) for c in codes] == values
            assert d.values_list() == values

    def test_code_of_missing(self, backend):
        d = UnsortedDictionary.create(DataType.STRING, backend)
        d.code_for_insert("present")
        assert d.code_of("absent") is None
        assert d.code_of("present") == 0

    def test_lazy_lookup_rebuild(self, backend):
        d = UnsortedDictionary.create(DataType.INT64, backend)
        d.code_for_insert(5)
        d.code_for_insert(7)
        d._lookup = None  # simulate a restart losing the volatile map
        assert d.code_of(7) == 1
        assert d.code_for_insert(5) == 0  # no duplicate appended
        assert len(d) == 2

    def test_persistent_lookup_requires_nvm(self):
        with pytest.raises(ValueError):
            UnsortedDictionary.create(
                DataType.INT64, VolatileBackend(), persistent_lookup=True
            )


class TestPersistentLookup:
    def test_lookup_without_rebuild(self, pool):
        backend = NvmBackend(pool)
        d = UnsortedDictionary.create(DataType.STRING, backend, persistent_lookup=True)
        code = d.code_for_insert("hello")
        attached = UnsortedDictionary.attach(
            DataType.STRING, backend, d.values.offset, d.persistent_lookup.offset
        )
        # code_of answers straight from NVM (no volatile lookup built).
        assert attached._lookup is None
        assert attached.code_of("hello") == code
        assert attached._lookup is None

    def test_repair_after_lagging_lookup(self, pool):
        backend = NvmBackend(pool)
        d = UnsortedDictionary.create(DataType.INT64, backend, persistent_lookup=True)
        d.code_for_insert(1)
        d.code_for_insert(2)
        # Simulate a crash between value publish and lookup insert.
        d.values.append(3)
        attached = UnsortedDictionary.attach(
            DataType.INT64, backend, d.values.offset, d.persistent_lookup.offset
        )
        assert attached.code_of(3) == 2
        assert attached.code_for_insert(3) == 2  # repaired, not duplicated

    def test_hash_key_stability(self):
        assert hash_key(DataType.INT64, -1) == 2**64 - 1
        assert hash_key(DataType.STRING, "abc") == hash_key(DataType.STRING, "abc")
        assert hash_key(DataType.FLOAT64, 1.5) == hash_key(DataType.FLOAT64, 1.5)


class TestSortedDictionary:
    def _build(self, backend, values, dtype=DataType.INT64):
        return SortedDictionary.build(dtype, backend, values)

    def test_codes_are_sorted_positions(self, backend):
        d = self._build(backend, [10, 20, 30])
        assert d.code_of(10) == 0
        assert d.code_of(30) == 2
        assert d.code_of(15) is None

    def test_bounds_numeric(self, backend):
        d = self._build(backend, [10, 20, 30])
        assert d.lower_bound(15) == 1
        assert d.lower_bound(20) == 1
        assert d.upper_bound(20) == 2
        assert d.lower_bound(5) == 0
        assert d.lower_bound(99) == 3
        assert d.upper_bound(99) == 3

    def test_bounds_strings(self, backend):
        d = self._build(backend, ["apple", "mango", "pear"], DataType.STRING)
        assert d.code_of("mango") == 1
        assert d.lower_bound("banana") == 1
        assert d.upper_bound("mango") == 2

    def test_decode(self, backend):
        import numpy as np

        d = self._build(backend, [5, 6, 7])
        assert d.decode(np.array([2, 0, 1])) == [7, 5, 6]

    def test_empty_dictionary(self, backend):
        d = self._build(backend, [])
        assert len(d) == 0
        assert d.code_of(1) is None
        assert d.lower_bound(1) == 0

    def test_values_list_types(self, backend):
        d = self._build(backend, [1.5, 2.5], DataType.FLOAT64)
        values = d.values_list()
        assert values == [1.5, 2.5]
        assert all(isinstance(v, float) for v in values)

    def test_attach_after_restart(self, pool_dir):
        from repro.nvm.pool import PMemPool

        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        backend = NvmBackend(pool)
        d = SortedDictionary.build(DataType.STRING, backend, ["a", "b", "c"])
        off = d.values.offset
        pool.close()
        pool = PMemPool.open(pool_dir)
        backend = NvmBackend(pool)
        d2 = SortedDictionary.attach(DataType.STRING, backend, off)
        assert d2.code_of("b") == 1
        assert d2.values_list() == ["a", "b", "c"]
        pool.close()
