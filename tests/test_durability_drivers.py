"""The DurabilityDriver strategy layer: one contract, three stacks."""

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.core.durability import (
    DurabilityDriver,
    LogDriver,
    NoneDriver,
    NvmDriver,
    create_driver,
)
from repro.storage.types import DataType

from tests.conftest import make_config

ROWS = [{"id": i, "name": f"row-{i}", "score": i * 0.25} for i in range(200)]
SCHEMA = {
    "id": DataType.INT64,
    "name": DataType.STRING,
    "score": DataType.FLOAT64,
}


class TestDriverSelection:
    @pytest.mark.parametrize(
        "mode,cls",
        [
            (DurabilityMode.NVM, NvmDriver),
            (DurabilityMode.LOG, LogDriver),
            (DurabilityMode.NONE, NoneDriver),
        ],
    )
    def test_factory_maps_mode_to_driver(self, tmp_path, mode, cls):
        driver = create_driver(str(tmp_path / "db"), make_config(mode))
        assert isinstance(driver, cls)
        assert isinstance(driver, DurabilityDriver)
        assert driver.mode is mode

    @pytest.mark.parametrize(
        "mode,cls",
        [
            (DurabilityMode.NVM, NvmDriver),
            (DurabilityMode.LOG, LogDriver),
            (DurabilityMode.NONE, NoneDriver),
        ],
    )
    def test_database_binds_matching_driver(self, tmp_path, mode, cls):
        db = Database(str(tmp_path / "db"), make_config(mode))
        assert isinstance(db._driver, cls)
        assert db._driver._db is db
        db.close()

    def test_only_nvm_driver_exposes_pool(self, tmp_path):
        for mode in DurabilityMode:
            db = Database(str(tmp_path / mode.value), make_config(mode))
            if mode is DurabilityMode.NVM:
                assert db._pool is not None
            else:
                assert db._pool is None
            db.close()


class TestRestartRoundTrips:
    """Every durable mode survives a clean restart through its driver."""

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_restart_round_trip(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        db.create_table("t", SCHEMA)
        db.bulk_insert("t", ROWS)
        with db.begin() as txn:
            txn.insert("t", {"id": 200, "name": "row-200", "score": 50.0})
        db = db.restart()
        assert db.query("t").count == 201
        assert sorted(db.query("t").column("id")) == list(range(201))
        assert db.verify() == []
        db.close()

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_crash_round_trip(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        db.create_table("t", SCHEMA)
        db.bulk_insert("t", ROWS)
        db.crash()
        db = Database(str(tmp_path / "db"), make_config(mode))
        assert db.query("t").count == len(ROWS)
        assert db.verify() == []
        db.close()

    def test_none_mode_forgets_everything(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        db.create_table("t", SCHEMA)
        db.bulk_insert("t", ROWS)
        db = db.restart()
        assert db.table_names == []
        db.close()

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_indexes_survive_restart_via_driver(self, tmp_path, mode):
        from repro.query.predicate import Eq

        db = Database(str(tmp_path / "db"), make_config(mode))
        db.create_table("t", SCHEMA)
        db.create_index("t", "id")
        db.bulk_insert("t", ROWS)
        db = db.restart()
        assert "id" in db.indexes_on("t")
        assert db.query("t", Eq("id", 7)).rows()[0]["name"] == "row-7"
        db.close()


class TestCheckpointContract:
    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.NONE])
    def test_non_log_drivers_reject_checkpoint(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        with pytest.raises(RuntimeError, match="LOG mode"):
            db.checkpoint()
        db.close()


class TestDriverStats:
    def test_nvm_stats_include_pool(self, nvm_db):
        assert "nvm" in nvm_db.stats()

    def test_log_stats_include_wal(self, log_db):
        assert "wal" in log_db.stats()

    def test_none_stats_have_no_driver_section(self, none_db):
        stats = none_db.stats()
        assert "nvm" not in stats and "wal" not in stats
