"""Model-based engine testing: the database vs. a plain dict.

Hypothesis drives random transaction streams against the engine and a
reference model; after every commit/abort the visible state must match.
A final restart (per mode) re-checks against the model.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.query.predicate import Eq
from repro.storage.types import DataType

from tests.conftest import make_config

SCHEMA = {"key": DataType.INT64, "payload": DataType.STRING}

_actions = st.lists(
    st.lists(
        st.one_of(
            st.tuples(st.just("insert"), st.integers(0, 20), st.text(max_size=6)),
            st.tuples(st.just("update"), st.integers(0, 20), st.text(max_size=6)),
            st.tuples(st.just("delete"), st.integers(0, 20), st.just("")),
        ),
        min_size=1,
        max_size=4,
    ).flatmap(
        lambda ops: st.tuples(st.just(ops), st.booleans())  # (ops, commit?)
    ),
    max_size=12,
)


def _apply_to_engine(db: Database, ops, commit: bool) -> bool:
    txn = db.begin()
    try:
        for action, key, payload in ops:
            if action == "insert":
                # Model keys are unique: replace = delete + insert.
                refs = txn.query("kv", Eq("key", key)).refs()
                for ref in refs:
                    txn.delete("kv", ref)
                txn.insert("kv", {"key": key, "payload": payload})
            else:
                refs = txn.query("kv", Eq("key", key)).refs()
                if not refs:
                    continue
                if action == "delete":
                    txn.delete("kv", refs[0])
                else:
                    txn.update("kv", refs[0], {"payload": payload})
        if commit:
            txn.commit()
            return True
        txn.abort()
        return False
    except Exception:
        if txn.is_active:
            txn.abort()
        raise


def _apply_to_model(model: dict, ops) -> None:
    for action, key, payload in ops:
        if action == "insert":
            model[key] = payload
        elif action == "delete":
            model.pop(key, None)
        elif key in model:
            model[key] = payload


def _visible(db: Database) -> dict:
    return {row["key"]: row["payload"] for row in db.query("kv").rows()}


@pytest.mark.parametrize(
    "mode", [DurabilityMode.NVM, DurabilityMode.LOG, DurabilityMode.NONE]
)
@given(stream=_actions)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_engine_matches_model(tmp_path_factory, mode, stream):
    path = str(tmp_path_factory.mktemp("model-db"))
    db = Database(path, make_config(mode))
    db.create_table("kv", SCHEMA)
    model: dict[int, str] = {}
    try:
        for ops, commit in stream:
            if _apply_to_engine(db, ops, commit):
                _apply_to_model(model, ops)
            assert _visible(db) == model
        if mode is not DurabilityMode.NONE:
            db = db.restart()
            assert _visible(db) == model
    finally:
        db.close()


@pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
@given(stream=_actions, merge_at=st.integers(0, 11))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_engine_matches_model_with_merge(tmp_path_factory, mode, stream, merge_at):
    path = str(tmp_path_factory.mktemp("model-db"))
    db = Database(path, make_config(mode))
    db.create_table("kv", SCHEMA)
    model: dict[int, str] = {}
    try:
        for i, (ops, commit) in enumerate(stream):
            if i == merge_at:
                db.merge("kv")
                assert _visible(db) == model
            if _apply_to_engine(db, ops, commit):
                _apply_to_model(model, ops)
        db.merge("kv")
        assert _visible(db) == model
        db = db.restart()
        assert _visible(db) == model
    finally:
        db.close()
