"""Randomised failure injection: crash anywhere, recover, check invariants.

The oracle: every transaction the workload *knows* committed must be
fully visible after recovery; every transaction that never committed
must be fully invisible. Transactions in flight at the crash may land
either way for the LOG engine with group commit (atomic per txn), and
must be rolled back for the NVM engine — in all cases the database must
pass the consistency validator.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.nvm.pool import PMemMode
from repro.query.predicate import Eq
from repro.recovery.validator import validate_database
from repro.storage.types import DataType

from tests.conftest import make_config

SCHEMA = {"key": DataType.INT64, "note": DataType.STRING}


class Oracle:
    """Ground truth of the expected visible state, keyed by `key`."""

    def __init__(self):
        self.committed: dict[int, str] = {}

    def apply(self, ops: list[tuple[str, int, str]]) -> None:
        for action, key, note in ops:
            if action == "insert":
                self.committed[key] = note
            elif action == "delete":
                self.committed.pop(key, None)
            else:  # update
                self.committed[key] = note


def _random_txn(rng: random.Random, next_key: list[int], live_keys: list[int]):
    """Plan one transaction as a list of (action, key, note) steps."""
    ops = []
    for _ in range(rng.randint(1, 4)):
        dice = rng.random()
        if dice < 0.6 or not live_keys:
            key = next_key[0]
            next_key[0] += 1
            ops.append(("insert", key, f"v{rng.randrange(1000)}"))
            live_keys.append(key)
        elif dice < 0.8:
            key = rng.choice(live_keys)
            ops.append(("update", key, f"u{rng.randrange(1000)}"))
        else:
            key = rng.choice(live_keys)
            live_keys.remove(key)
            ops.append(("delete", key, ""))
    return ops


def _execute(db: Database, ops) -> bool:
    """Run one planned transaction; returns True when committed."""
    txn = db.begin()
    try:
        for action, key, note in ops:
            if action == "insert":
                txn.insert("kv", {"key": key, "note": note})
            else:
                refs = txn.query("kv", Eq("key", key)).refs()
                if not refs:
                    continue
                if action == "delete":
                    txn.delete("kv", refs[0])
                else:
                    txn.update("kv", refs[0], {"note": note})
        txn.commit()
        return True
    except Exception:
        if txn.is_active:
            txn.abort()
        return False


def _run_crash_round(tmp_path, seed: int, mode: DurabilityMode, **cfg_overrides):
    rng = random.Random(seed)
    cfg = make_config(mode, **cfg_overrides)
    path = str(tmp_path / f"db-{mode.value}-{seed}")
    db = Database(path, cfg)
    db.create_table("kv", SCHEMA)

    oracle = Oracle()
    next_key = [0]
    live: list[int] = []
    txn_count = rng.randint(5, 30)
    for _ in range(txn_count):
        ops = _random_txn(rng, next_key, live)
        if _execute(db, ops):
            oracle.apply(ops)

    # Leave a victim transaction in flight, then pull the plug.
    victim = db.begin()
    victim.insert("kv", {"key": 10**6, "note": "doomed"})
    if rng.random() < 0.5 and oracle.committed:
        key = rng.choice(sorted(oracle.committed))
        refs = victim.query("kv", Eq("key", key)).refs()
        if refs:
            victim.delete("kv", refs[0])
    db.crash(survivor_fraction=rng.choice([0.0, 0.3, 1.0]), seed=seed)

    db = Database(path, cfg)
    problems = validate_database(db._tables_by_id.values(), db.last_cid)
    assert not problems, problems
    rows = db.query("kv").rows()
    found = {row["key"]: row["note"] for row in rows}
    assert found == oracle.committed, (
        f"seed {seed}: expected {len(oracle.committed)} keys, got {len(found)}"
    )
    assert 10**6 not in found  # the doomed insert must never surface
    db.close()


@pytest.mark.parametrize("seed", range(8))
def test_nvm_strict_crash_consistency(tmp_path, seed):
    _run_crash_round(
        tmp_path, seed, DurabilityMode.NVM, pmem_mode=PMemMode.STRICT
    )


@pytest.mark.parametrize("seed", range(8))
def test_log_sync_crash_consistency(tmp_path, seed):
    _run_crash_round(tmp_path, seed, DurabilityMode.LOG, group_commit_size=1)


@pytest.mark.parametrize("seed", range(4))
def test_nvm_with_persistent_structures(tmp_path, seed):
    _run_crash_round(
        tmp_path,
        seed + 100,
        DurabilityMode.NVM,
        pmem_mode=PMemMode.STRICT,
        persistent_dict_index=True,
        persistent_delta_index=True,
    )


@pytest.mark.parametrize("seed", range(4))
def test_nvm_crash_after_merge(tmp_path, seed):
    rng = random.Random(seed)
    cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
    path = str(tmp_path / "db")
    db = Database(path, cfg)
    db.create_table("kv", SCHEMA)
    db.create_index("kv", "key")
    db.bulk_insert("kv", [{"key": i, "note": f"n{i}"} for i in range(40)])
    db.merge("kv")
    with db.begin() as txn:
        ref = txn.query("kv", Eq("key", 5)).refs()[0]
        txn.delete("kv", ref)
    txn = db.begin()
    txn.insert("kv", {"key": 500, "note": "ghost"})
    db.crash(seed=seed)
    db = Database(path, cfg)
    assert db.query("kv").count == 39
    assert db.query("kv", Eq("key", 5)).count == 0
    assert db.query("kv", Eq("key", 500)).count == 0
    assert not validate_database(db._tables_by_id.values(), db.last_cid)
    db.close()


def test_log_crash_between_checkpoints(tmp_path):
    cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
    path = str(tmp_path / "db")
    db = Database(path, cfg)
    db.create_table("kv", SCHEMA)
    db.bulk_insert("kv", [{"key": i, "note": "pre"} for i in range(10)])
    db.checkpoint()
    db.bulk_insert("kv", [{"key": 100 + i, "note": "post"} for i in range(5)])
    db.crash()
    db = Database(path, cfg)
    assert db.query("kv").count == 15
    db.crash()  # crash again immediately
    db = Database(path, cfg)
    assert db.query("kv").count == 15
    db.close()


def test_repeated_crashes_converge(tmp_path):
    """Crash, recover, write, crash... state never diverges."""
    cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
    path = str(tmp_path / "db")
    db = Database(path, cfg)
    db.create_table("kv", SCHEMA)
    expected = {}
    for round_no in range(6):
        key = round_no
        db.insert("kv", {"key": key, "note": f"round{round_no}"})
        expected[key] = f"round{round_no}"
        ghost = db.begin()
        ghost.insert("kv", {"key": 900 + round_no, "note": "ghost"})
        db.crash(survivor_fraction=0.5, seed=round_no)
        db = Database(path, cfg)
        rows = {r["key"]: r["note"] for r in db.query("kv").rows()}
        assert rows == expected, f"round {round_no}"
    db.close()
