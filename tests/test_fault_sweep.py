"""Tests for the crash-point sweep harness (``repro.fault``)."""

import json

import pytest

from repro.core.sharding import partition_of
from repro.fault.inject import CrashPointInjector, SimulatedPowerFailure
from repro.fault.sweep import CrashSweep, SweepSettings, main
from repro.fault.workloads import (
    SCHEMA,
    TABLE,
    Oracle,
    Step,
    make_workload,
)
from repro.nvm.latency import get_persistence_hook, persistence_event


class TestInjector:
    def test_counting_mode_tallies_without_firing(self):
        with CrashPointInjector() as inj:
            persistence_event("flush")
            persistence_event("flush")
            persistence_event("drain")
        assert inj.events == 3
        assert inj.by_kind == {"flush": 2, "drain": 1}
        assert not inj.fired
        assert get_persistence_hook() is None

    def test_fires_at_k_and_power_stays_off(self):
        with CrashPointInjector(crash_at=2) as inj:
            persistence_event("flush")
            with pytest.raises(SimulatedPowerFailure):
                persistence_event("drain")
            assert inj.fired
            assert inj.fired_kind == "drain"
            # every later event must fail too — the power is off
            with pytest.raises(SimulatedPowerFailure):
                persistence_event("wal_fsync")
        assert inj.events == 2  # post-failure attempts are not points

    def test_hook_uninstalled_even_on_failure(self):
        with pytest.raises(SimulatedPowerFailure):
            with CrashPointInjector(crash_at=1):
                persistence_event("flush")
        assert get_persistence_hook() is None
        persistence_event("flush")  # no hook installed: a no-op

    def test_not_swallowed_by_except_exception(self):
        # Engine or workload code with `except Exception` cleanup must
        # not be able to absorb a power failure and keep running.
        with CrashPointInjector(crash_at=1):
            with pytest.raises(SimulatedPowerFailure):
                try:
                    persistence_event("flush")
                except Exception:  # noqa: BLE001
                    pytest.fail("power failure was swallowed")

    def test_crash_at_is_one_based(self):
        with pytest.raises(ValueError):
            CrashPointInjector(crash_at=0)


class TestWorkloads:
    def test_same_seed_same_plan(self):
        assert make_workload("ycsb", 7) == make_workload("ycsb", 7)
        assert make_workload("ycsb", 7) != make_workload("ycsb", 8)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_workload("nope", 1)

    def test_oracle_applies_committed_steps_only(self):
        oracle = Oracle({1: "a"})
        oracle.begin_step(Step("insert", rows=((2, "b"),)))
        assert oracle.pending is not None
        assert oracle.committed == {1: "a"}  # not yet returned
        oracle.commit_step()
        assert oracle.pending is None
        assert oracle.committed == {1: "a", 2: "b"}
        oracle.begin_step(Step("delete", key=1))
        oracle.commit_step()
        assert oracle.committed == {2: "b"}

    def test_maintenance_steps_have_no_effects(self):
        assert Step("merge").effects() == {}
        assert Step("checkpoint").effects() == {}


class TestPendingGroups:
    def test_sharded_batches_group_per_shard(self, tmp_path):
        sweep = CrashSweep(
            str(tmp_path), SweepSettings(mode="nvm", shards=4)
        )
        step = Step("insert_many", rows=tuple((k, f"n{k}") for k in range(16)))
        groups = sweep._pending_groups(step)
        assert sum(len(g) for g in groups) == 16
        for group in groups:
            assert len({partition_of(k, 4) for k in group}) == 1

    def test_single_engine_batch_is_one_group(self, tmp_path):
        sweep = CrashSweep(
            str(tmp_path), SweepSettings(mode="nvm", shards=1)
        )
        step = Step("insert_many", rows=((1, "a"), (2, "b")))
        assert sweep._pending_groups(step) == [{1: "a", 2: "b"}]

    def test_maintenance_and_idle_have_no_groups(self, tmp_path):
        sweep = CrashSweep(
            str(tmp_path), SweepSettings(mode="nvm", shards=4)
        )
        assert sweep._pending_groups(Step("merge")) == []
        assert sweep._pending_groups(None) == []


class TestChecker:
    """The invariant checker must actually detect broken states."""

    @pytest.fixture
    def sweep_and_engine(self, tmp_path):
        sweep = CrashSweep(
            str(tmp_path / "sweep"), SweepSettings(mode="nvm", shards=1)
        )
        engine = sweep._open(str(tmp_path / "db"))
        engine.create_table(TABLE, SCHEMA)
        engine.insert(TABLE, {"key": 1, "note": "real"})
        yield sweep, engine
        engine.close()

    def test_flags_lost_committed_row(self, sweep_and_engine):
        sweep, engine = sweep_and_engine
        problems = sweep._check_state(engine, Oracle({1: "real", 2: "gone"}))
        assert any("lost" in p for p in problems)

    def test_flags_phantom_row(self, sweep_and_engine):
        sweep, engine = sweep_and_engine
        problems = sweep._check_state(engine, Oracle({}))
        assert any("phantom" in p for p in problems)

    def test_flags_wrong_value(self, sweep_and_engine):
        sweep, engine = sweep_and_engine
        problems = sweep._check_state(engine, Oracle({1: "other"}))
        assert any("expected" in p for p in problems)

    def test_flags_torn_pending_batch(self, sweep_and_engine):
        sweep, engine = sweep_and_engine
        oracle = Oracle({})
        oracle.begin_step(
            Step("insert_many", rows=((1, "real"), (5, "missing")))
        )
        problems = sweep._check_state(engine, oracle)
        assert any("atomicity violation" in p for p in problems)

    def test_accepts_pending_batch_fully_applied_or_absent(
        self, sweep_and_engine
    ):
        sweep, engine = sweep_and_engine
        applied = Oracle({})
        applied.begin_step(Step("insert", rows=((1, "real"),)))
        assert sweep._check_state(engine, applied) == []
        absent = Oracle({1: "real"})
        absent.begin_step(Step("insert", rows=((7, "never-landed"),)))
        assert sweep._check_state(engine, absent) == []


#: (mode, shards, survivor_fraction) — all three drivers, single-engine
#: and 4-shard, each survivor regime from the issue.
SWEEP_CELLS = [
    ("nvm", 1, 0.0),
    ("nvm", 1, 0.5),
    ("nvm", 1, 1.0),
    ("nvm", 4, 0.0),
    ("nvm", 4, 1.0),
    ("log", 1, 0.0),
    ("log", 1, 0.5),
    ("log", 1, 1.0),
    ("log", 4, 0.0),
    ("log", 4, 1.0),
    ("none", 1, 0.0),
]


@pytest.mark.parametrize(
    "mode,shards,survivor",
    SWEEP_CELLS,
    ids=[f"{m}-s{s}-f{f}" for m, s, f in SWEEP_CELLS],
)
def test_sweep_reports_zero_violations(tmp_path, mode, shards, survivor):
    settings = SweepSettings(
        workload="batch",
        mode=mode,
        shards=shards,
        survivor_fraction=survivor,
        sample=8,
        seed=11,
    )
    report = CrashSweep(str(tmp_path), settings).run()
    assert report["violations"] == []
    assert report["points_not_fired"] == 0
    # Every mode has sweepable boundaries now: NONE still emits the
    # online-merge fold/cutover events (a crash there loses the lot,
    # which the oracle accepts as the NONE contract).
    assert report["points_total"] > 0
    assert report["points_swept"] >= min(8, report["points_total"])
    assert report["crash_kinds_swept"]
    assert report["recovery"]["runs"] == report["points_swept"] + 1


@pytest.mark.parametrize(
    "mode,shards",
    [("nvm", 1), ("nvm", 4), ("log", 1), ("log", 4)],
    ids=["nvm-s1", "nvm-s4", "log-s1", "log-s4"],
)
def test_sweep_concurrent_workload(tmp_path, mode, shards):
    """Crash points land while several writer threads are in flight.

    Event counts are nondeterministic under concurrency (fsync
    coalescing depends on scheduling), so unlike the serial workloads
    ``points_not_fired`` may be nonzero — a point past the replayed
    run's event count simply crashes after the last step, which is
    still a valid (and checked) recovery scenario.
    """
    settings = SweepSettings(
        workload="concurrent",
        mode=mode,
        shards=shards,
        sample=8,
        seed=11,
    )
    report = CrashSweep(str(tmp_path), settings).run()
    assert report["violations"] == []
    assert report["points_total"] > 0
    assert report["crash_kinds_swept"]


@pytest.mark.parametrize(
    "mode,shards",
    [("nvm", 1), ("log", 1)],
    ids=["nvm", "log"],
)
def test_sweep_online_merge_workload(tmp_path, mode, shards):
    """Crash points land inside fold chunks and cutovers while writer
    threads race an online merge (``merge_mix`` steps).

    Like the ``concurrent`` workload, event counts are nondeterministic
    (how many fold chunks run before the crash depends on scheduling),
    so ``points_not_fired`` may be nonzero; every fired point must still
    recover to a committed-plus-atomic-pending state.
    """
    settings = SweepSettings(
        workload="online",
        mode=mode,
        shards=shards,
        sample=8,
        seed=5,
    )
    report = CrashSweep(str(tmp_path), settings).run()
    assert report["violations"] == []
    assert report["points_total"] > 0
    assert report["crash_kinds_swept"]


REPLICATED_CELLS = [
    ("nvm", "semi_sync"),
    ("nvm", "async"),
    ("log", "semi_sync"),
    ("log", "async"),
]


@pytest.mark.parametrize(
    "mode,ack",
    REPLICATED_CELLS,
    ids=[f"{m}-{a}" for m, a in REPLICATED_CELLS],
)
def test_sweep_replicated_workload(tmp_path, mode, ack):
    """Kill the primary at persistence boundaries while WAL shipping to
    a follower; promote the follower and hold it to the ack-mode
    contract (semi-sync: every acked commit survives; async: the
    replica equals some commit prefix). The promoted replica then takes
    a sync-committed write, crashes, and must recover it — the full
    post-failover lifecycle, fsync-on-open of the shipped tail included.
    """
    settings = SweepSettings(
        workload="replicated",
        mode=mode,
        sample=6,
        seed=11,
        ack_mode=ack,
    )
    report = CrashSweep(str(tmp_path), settings).run()
    assert report["violations"] == []
    assert report["points_total"] > 0
    assert report["ack_mode"] == ack
    assert report["crash_kinds_swept"]


def test_replicated_workload_rejects_unshippable_cells(tmp_path):
    with pytest.raises(ValueError, match="shards"):
        CrashSweep(
            str(tmp_path), SweepSettings(workload="replicated", shards=4)
        )
    with pytest.raises(ValueError, match="shippable"):
        CrashSweep(
            str(tmp_path), SweepSettings(workload="replicated", mode="none")
        )


def test_replicated_cli_cell(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(
        [
            "--workload",
            "replicated",
            "--sample",
            "3",
            "--seed",
            "5",
            "--modes",
            "log,none",  # none must be skipped, not crash
            "--acks",
            "semi_sync",
            "--out",
            str(out),
            "--root",
            str(tmp_path / "scratch"),
        ]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["total_violations"] == 0
    (cell,) = data["configs"]  # the none cell was skipped
    assert cell["mode"] == "log"
    assert cell["ack_mode"] == "semi_sync"
    assert "OK" in capsys.readouterr().out


def test_cli_writes_report_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(
        [
            "--workload",
            "maint",
            "--sample",
            "4",
            "--seed",
            "3",
            "--modes",
            "log",
            "--shards",
            "1",
            "--out",
            str(out),
            "--root",
            str(tmp_path / "scratch"),
        ]
    )
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["total_violations"] == 0
    (cell,) = data["configs"]
    assert cell["mode"] == "log"
    assert cell["points_total"] > 0
    assert cell["recovery"]["runs"] >= 1
    assert "OK" in capsys.readouterr().out
