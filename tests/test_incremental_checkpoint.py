"""Incremental checkpoint chain: dirty tracking, composition, fallback.

A checkpoint publishes one link of a chain under ``<db>/checkpoints/``:
a segment holding only the tables that changed since their last
snapshot, plus a manifest mapping every live table to the segment that
holds its newest snapshot. These tests pin the cost model (clean tables
are never rewritten), chain composition across restarts, torn-manifest
fallback, garbage collection, and the metrics-driven scheduler that
triggers checkpoints from the maintenance daemon.
"""

import glob
import os
import time

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.obs import get_registry
from repro.query.predicate import Eq
from repro.storage.types import DataType
from repro.wal.checkpoint import chain_dir

from tests.conftest import make_config

ITEMS = {"id": DataType.INT64, "name": DataType.STRING}


def _fill_tables(db, n_tables=10, rows=200):
    for i in range(n_tables):
        db.create_table(f"t{i}", ITEMS)
        db.bulk_insert(
            f"t{i}", [{"id": j, "name": f"n{j % 9}"} for j in range(rows)]
        )


def _chain(db):
    return chain_dir(db._driver.checkpoint_path)


class TestIncrementalCost:
    def test_one_dirty_table_writes_fraction_of_full(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        _fill_tables(db, n_tables=10, rows=200)
        full = db.checkpoint()  # everything dirty: full snapshot
        db.bulk_insert("t3", [{"id": 900 + i, "name": "new"} for i in range(5)])
        incremental = db.checkpoint()  # only t3 re-snapshotted
        assert full > 0
        assert incremental < 0.2 * full
        db.close()

    def test_clean_checkpoint_writes_no_segment(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        _fill_tables(db, n_tables=3, rows=50)
        db.checkpoint()
        segs_before = set(glob.glob(os.path.join(_chain(db), "seg-*")))
        tables = get_registry().counter("engine_checkpoint_tables_total")
        before = tables.value
        db.checkpoint()  # nothing changed: manifest-only link
        assert tables.value == before
        assert set(glob.glob(os.path.join(_chain(db), "seg-*"))) == segs_before
        db.close()

    def test_merge_marks_table_dirty(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG, checkpoint_after_merge=False)
        db = Database(str(tmp_path / "db"), cfg)
        _fill_tables(db, n_tables=2, rows=60)
        db.checkpoint()
        tables = get_registry().counter("engine_checkpoint_tables_total")
        before = tables.value
        db.merge("t0")
        db.checkpoint()
        assert tables.value == before + 1  # t0 resnapshotted, t1 carried
        db.close()


class TestChainComposition:
    def test_chain_composes_across_restart(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=4, rows=30)
        db.checkpoint()
        db.bulk_insert("t1", [{"id": 500, "name": "a"}])
        db.checkpoint()
        db.bulk_insert("t2", [{"id": 600, "name": "b"}])
        db.checkpoint()
        db.crash()
        db = Database(path, cfg)
        # Restore composed snapshots from several segments; no replay.
        assert db.last_recovery.log_records_replayed == 0
        assert db.last_recovery.checkpoint_bytes > 0
        assert db.query("t0").count == 30
        assert db.query("t1").count == 31
        assert db.query("t2").count == 31
        assert db.query("t1", Eq("id", 500)).count == 1
        db.close()

    def test_clean_tables_stay_clean_after_restart(self, tmp_path):
        """A table untouched since its segment is not rewritten by the
        first post-restart checkpoint."""
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=3, rows=40)
        db.checkpoint()
        db = db.restart()
        tables = get_registry().counter("engine_checkpoint_tables_total")
        before = tables.value
        db.insert("t0", {"id": 999, "name": "post"})
        db.checkpoint()
        assert tables.value == before + 1  # t0 only; t1, t2 carried
        db.close()

    def test_dropped_table_leaves_the_chain(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=3, rows=20)
        db.checkpoint()
        db.drop_table("t1")
        db.checkpoint()
        db.crash()
        db = Database(path, cfg)
        assert sorted(db.table_names) == ["t0", "t2"]
        db.close()

    def test_legacy_monolithic_mode_still_works(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG, incremental_checkpoints=False)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=2, rows=25)
        db.checkpoint()
        db.crash()
        db = Database(path, cfg)
        assert db.last_recovery.checkpoint_bytes > 0
        assert db.last_recovery.log_records_replayed == 0
        assert db.query("t0").count == 25
        assert not os.path.exists(_chain(db))
        db.close()


class TestManifestCrashSafety:
    def test_torn_manifest_falls_back_to_previous_link(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=3, rows=40)
        db.checkpoint()
        db.bulk_insert("t1", [{"id": 500 + i, "name": "x"} for i in range(8)])
        db.checkpoint()
        db.crash()
        chain = _chain(db)
        manifests = sorted(glob.glob(os.path.join(chain, "manifest-*")))
        assert len(manifests) == 2
        # Tear the newest manifest mid-write.
        with open(manifests[-1], "r+b") as f:
            f.truncate(os.path.getsize(manifests[-1]) // 2)
        db = Database(path, cfg)
        # Fell back to the older manifest; the lost tail replays instead.
        assert db.last_recovery.log_records_replayed > 0
        assert db.query("t1").count == 48
        db.close()

    def test_garbage_manifest_falls_back(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        _fill_tables(db, n_tables=2, rows=30)
        db.checkpoint()
        db.insert("t0", {"id": 999, "name": "tail"})
        db.checkpoint()
        db.crash()
        manifests = sorted(glob.glob(os.path.join(_chain(db), "manifest-*")))
        with open(manifests[-1], "r+b") as f:
            f.write(b"\xde\xad\xbe\xef" * 8)
        db = Database(path, cfg)
        assert db.query("t0").count == 31
        assert db.query("t1").count == 30
        db.close()

    def test_gc_keeps_two_manifests_and_referenced_segments(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        _fill_tables(db, n_tables=2, rows=20)
        for i in range(6):
            db.insert("t0", {"id": 1000 + i, "name": "x"})
            db.checkpoint()
        chain = _chain(db)
        manifests = glob.glob(os.path.join(chain, "manifest-*"))
        assert len(manifests) <= 2
        # Every surviving segment is referenced by a surviving manifest.
        from repro.wal.checkpoint import CheckpointChain

        state = CheckpointChain(chain).state()
        referenced = {
            f"seg-{seq:08d}.ckpt" for seq in state.mapping.values()
        }
        on_disk = {
            os.path.basename(p)
            for p in glob.glob(os.path.join(chain, "seg-*"))
        }
        assert referenced <= on_disk
        # GC keeps at most the segments the two manifests reference.
        assert len(on_disk) <= len(referenced) + 2
        db.close()


class TestCheckpointScheduling:
    def test_daemon_checkpoints_on_log_bytes(self, tmp_path):
        cfg = make_config(
            DurabilityMode.LOG,
            checkpoint_log_bytes=4096,
            maintenance_interval_s=0.02,
        )
        db = Database(str(tmp_path / "db"), cfg)
        assert db._maintenance.running
        db.create_table("t", ITEMS)
        counter = get_registry().counter("maintenance_checkpoints_total")
        before = counter.value
        for i in range(300):
            db.insert("t", {"id": i, "name": f"payload-{i:04d}"})
        assert db._maintenance.wait_idle(timeout=10.0)
        assert counter.value > before
        assert db._driver.log_bytes_since_checkpoint < 4096
        db.close()

    def test_daemon_checkpoints_on_replay_budget(self, tmp_path):
        cfg = make_config(
            DurabilityMode.LOG,
            checkpoint_max_replay_s=1e-9,  # any pending byte busts it
            maintenance_interval_s=0.02,
        )
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("t", ITEMS)
        counter = get_registry().counter("maintenance_checkpoints_total")
        before = counter.value
        db.insert("t", {"id": 1, "name": "a"})
        deadline = time.monotonic() + 10.0
        while counter.value == before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert counter.value > before
        db.close()

    def test_daemon_off_without_thresholds(self, tmp_path):
        db = Database(
            str(tmp_path / "db"), make_config(DurabilityMode.LOG)
        )
        assert not db._maintenance._checkpoint_enabled
        db.close()

    def test_scheduled_checkpoint_bounds_restart(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(
            DurabilityMode.LOG,
            checkpoint_log_bytes=2048,
            maintenance_interval_s=0.02,
        )
        db = Database(path, cfg)
        db.create_table("t", ITEMS)
        for i in range(200):
            db.insert("t", {"id": i, "name": "x"})
        assert db._maintenance.wait_idle(timeout=10.0)
        db.crash()
        db = Database(path, cfg)
        assert db.query("t").count == 200
        # The chain bounded replay to the post-checkpoint tail.
        assert db.last_recovery.log_records_replayed < 100
        assert db.last_recovery.checkpoint_bytes > 0
        db.close()
