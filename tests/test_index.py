"""Unit tests for group-key and delta indexes."""

import numpy as np
import pytest

from repro.index.delta_index import PersistentDeltaIndex, VolatileDeltaIndex
from repro.index.groupkey import GroupKeyIndex
from repro.index.table_index import TableIndex
from repro.storage.backend import NvmBackend, VolatileBackend
from repro.storage.merge import merge_table
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table, unpack_rowref
from repro.storage.types import DataType

SCHEMA = Schema.of(k=DataType.INT64, v=DataType.STRING)


def _commit(table, values, cid=1):
    ref = table.insert_uncommitted(values, tid=1)
    mvcc, idx = table.mvcc_for(ref)
    mvcc.set_begin(idx, cid)
    mvcc.set_tid(idx, NO_TID)
    return ref


def _merged_table(backend, keys):
    table = Table.create(1, "t", SCHEMA, backend)
    for k in keys:
        _commit(table, [k, f"s{k}"])
    table.main, table.delta = merge_table(table, backend)
    return table


class TestGroupKeyIndex:
    def test_lookup_positions(self):
        backend = VolatileBackend()
        table = _merged_table(backend, [5, 3, 5, 9, 3, 5])
        index = GroupKeyIndex.build(backend, table.main.columns[0])
        dict0 = table.main.columns[0].dictionary
        codes = table.main.column_codes(0)
        for value in (3, 5, 9):
            code = dict0.code_of(value)
            expected = sorted(np.nonzero(codes == code)[0])
            assert sorted(index.lookup(code)) == expected

    def test_lookup_range(self):
        backend = VolatileBackend()
        table = _merged_table(backend, [1, 2, 3, 4, 5])
        index = GroupKeyIndex.build(backend, table.main.columns[0])
        dict0 = table.main.columns[0].dictionary
        lo = dict0.lower_bound(2)
        hi = dict0.upper_bound(4)
        positions = index.lookup_range(lo, hi)
        values = sorted(table.main.get_value(0, int(p)) for p in positions)
        assert values == [2, 3, 4]

    def test_empty_range(self):
        backend = VolatileBackend()
        table = _merged_table(backend, [1, 2])
        index = GroupKeyIndex.build(backend, table.main.columns[0])
        assert index.lookup_range(1, 1).size == 0

    def test_null_bucket(self):
        backend = VolatileBackend()
        table = Table.create(1, "t", SCHEMA, backend)
        _commit(table, [None, "a"])
        _commit(table, [1, "b"])
        table.main, table.delta = merge_table(table, backend)
        col = table.main.columns[0]
        index = GroupKeyIndex.build(backend, col)
        assert len(index.lookup(col.null_code)) == 1

    def test_attach_after_restart(self, pool_dir):
        from repro.nvm.pool import PMemPool

        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        backend = NvmBackend(pool)
        table = _merged_table(backend, [4, 4, 2])
        index = GroupKeyIndex.build(backend, table.main.columns[0])
        offs = index.offsets_vector.offset
        poss = index.positions_vector.offset
        code = table.main.columns[0].dictionary.code_of(4)
        expected = sorted(index.lookup(code))
        pool.close()
        pool = PMemPool.open(pool_dir)
        backend = NvmBackend(pool)
        again = GroupKeyIndex.attach(backend, offs, poss)
        assert sorted(again.lookup(code)) == expected
        pool.close()


class TestDeltaIndexes:
    @pytest.fixture(params=["volatile", "persistent"])
    def delta_index(self, request, pool):
        if request.param == "volatile":
            return VolatileDeltaIndex()
        return PersistentDeltaIndex.create(NvmBackend(pool))

    def test_add_and_lookup(self, delta_index):
        delta_index.add(7, 0)
        delta_index.add(7, 3)
        delta_index.add(2, 1)
        assert sorted(delta_index.lookup(7)) == [0, 3]
        assert list(delta_index.lookup(2)) == [1]
        assert delta_index.lookup(99).size == 0

    def test_entry_count(self, delta_index):
        for i in range(5):
            delta_index.add(i % 2, i)
        assert delta_index.entry_count() == 5

    def test_volatile_rebuild(self):
        backend = VolatileBackend()
        table = Table.create(1, "t", SCHEMA, backend)
        for k in [5, 6, 5]:
            _commit(table, [k, "x"])
        index = VolatileDeltaIndex()
        index.rebuild(table.delta, 0)
        code = table.delta.dictionaries[0].code_of(5)
        assert sorted(index.lookup(code)) == [0, 2]

    def test_persistent_attach_no_rebuild(self, pool_dir):
        from repro.nvm.pool import PMemPool

        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        backend = NvmBackend(pool)
        index = PersistentDeltaIndex.create(backend)
        index.add(3, 11)
        off = index.offset
        pool.close()
        pool = PMemPool.open(pool_dir)
        again = PersistentDeltaIndex.attach(NvmBackend(pool), off)
        assert list(again.lookup(3)) == [11]
        assert not again.needs_rebuild_after_restart
        pool.close()


class TestTableIndex:
    def _table_with_index(self, backend, persistent=False):
        table = Table.create(1, "t", SCHEMA, backend)
        for k in [1, 2, 1, None]:
            _commit(table, [k, "x"])
        table.main, table.delta = merge_table(table, backend)
        for k in [2, 1]:
            _commit(table, [k, "y"], cid=2)
        index = TableIndex.build(backend, table, "k", persistent_delta=persistent)
        return table, index

    def test_probe_spans_partitions(self):
        backend = VolatileBackend()
        table, index = self._table_with_index(backend)
        refs = index.probe_equal(table, 1)
        partitions = sorted(unpack_rowref(r)[0] for r in refs)
        assert len(refs) == 3
        assert partitions == [False, False, True]

    def test_probe_missing_value(self):
        backend = VolatileBackend()
        table, index = self._table_with_index(backend)
        assert index.probe_equal(table, 42) == []

    def test_probe_null(self):
        backend = VolatileBackend()
        table, index = self._table_with_index(backend)
        refs = index.probe_null(table)
        assert len(refs) == 1
        assert table.get_row(refs[0])[0] is None

    def test_on_insert_maintains(self):
        backend = VolatileBackend()
        table, index = self._table_with_index(backend)
        ref = _commit(table, [77, "fresh"], cid=3)
        __, row = unpack_rowref(ref)
        index.on_insert(table.delta.get_code(0, row), row)
        assert len(index.probe_equal(table, 77)) == 1

    def test_stale_delta_detected_and_rebuilt(self):
        backend = VolatileBackend()
        table, index = self._table_with_index(backend)
        # Simulate a restart: rows exist but the volatile index forgot them.
        index.delta_index = VolatileDeltaIndex()
        index._delta_synced_rows = 0
        assert len(index.probe_equal(table, 1)) == 3

    def test_persistent_variant_on_nvm(self, pool):
        backend = NvmBackend(pool)
        table, index = self._table_with_index(backend, persistent=True)
        assert isinstance(index.delta_index, PersistentDeltaIndex)
        assert len(index.probe_equal(table, 1)) == 3
