"""Cross-module integration scenarios."""

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.nvm.pool import PMemMode
from repro.query.predicate import And, Between, Eq, Gt, Not, Or
from repro.storage.types import DataType

from tests.conftest import make_config


class TestStringIndexes:
    @pytest.fixture
    def db(self, nvm_db):
        nvm_db.create_table(
            "users", {"uid": DataType.INT64, "email": DataType.STRING}
        )
        nvm_db.create_index("users", "email")
        nvm_db.bulk_insert(
            "users",
            [{"uid": i, "email": f"user{i}@example.com"} for i in range(200)],
        )
        return nvm_db

    def test_point_lookup(self, db):
        rows = db.query("users", Eq("email", "user42@example.com")).rows()
        assert rows == [{"uid": 42, "email": "user42@example.com"}]

    def test_string_range_via_index(self, db):
        db.merge("users")
        low, high = "user10@example.com", "user11@example.com"
        rows = db.query("users", Between("email", low, high))
        expected = sorted(
            i for i in range(200) if low <= f"user{i}@example.com" <= high
        )
        assert sorted(rows.column("uid")) == expected
        assert expected  # the range is non-trivial

    def test_index_survives_restart_and_update(self, db):
        with db.begin() as txn:
            ref = txn.query("users", Eq("email", "user5@example.com")).refs()[0]
            txn.update("users", ref, {"email": "renamed@example.com"})
        db2 = db.restart()
        try:
            assert db2.query("users", Eq("email", "user5@example.com")).count == 0
            assert db2.query("users", Eq("email", "renamed@example.com")).count == 1
        finally:
            db2.close()
            db._closed = True  # the fixture's close becomes a no-op


class TestMultiTableTransactions:
    def test_cross_table_atomicity(self, any_db):
        any_db.create_table("a", {"x": DataType.INT64})
        any_db.create_table("b", {"y": DataType.INT64})
        txn = any_db.begin()
        txn.insert("a", {"x": 1})
        txn.insert("b", {"y": 2})
        txn.abort()
        assert any_db.query("a").count == 0
        assert any_db.query("b").count == 0
        with any_db.begin() as txn:
            txn.insert("a", {"x": 1})
            txn.insert("b", {"y": 2})
        assert any_db.query("a").count == 1
        assert any_db.query("b").count == 1

    def test_cross_table_crash_atomicity(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("a", {"x": DataType.INT64})
        db.create_table("b", {"y": DataType.INT64})
        txn = db.begin()
        txn.insert("a", {"x": 1})
        txn.insert("b", {"y": 2})
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("a").count == 0
        assert db.query("b").count == 0
        assert db.verify() == []
        db.close()


class TestComplexPredicates:
    @pytest.fixture
    def db(self, none_db):
        none_db.create_table(
            "t", {"n": DataType.INT64, "s": DataType.STRING}
        )
        none_db.bulk_insert(
            "t", [{"n": i, "s": f"g{i % 3}"} for i in range(30)]
        )
        return none_db

    def test_nested_boolean_tree(self, db):
        pred = And(
            Or(Eq("s", "g0"), Eq("s", "g1")),
            Not(Between("n", 10, 19)),
            Gt("n", 3),
        )
        got = sorted(db.query("t", pred).column("n"))
        expected = sorted(
            i
            for i in range(30)
            if (i % 3 in (0, 1)) and not (10 <= i <= 19) and i > 3
        )
        assert got == expected

    def test_predicate_spans_merge_boundary(self, db):
        pred = And(Eq("s", "g1"), Between("n", 5, 25))
        before = sorted(db.query("t", pred).column("n"))
        db.merge("t")
        db.bulk_insert("t", [{"n": 100, "s": "g1"}])
        after = sorted(db.query("t", pred).column("n"))
        assert after == before  # 100 is outside the range


class TestAutoMergeUnderCrash:
    def test_crash_right_after_auto_merge(self, tmp_path):
        cfg = make_config(
            DurabilityMode.NVM, pmem_mode=PMemMode.STRICT, auto_merge_rows=10
        )
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("t", {"a": DataType.INT64})
        db.bulk_insert("t", [{"a": i} for i in range(15)])  # triggers merge
        assert db._maintenance.wait_idle(timeout=10.0)
        assert db.table("t").generation == 1
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("t").count == 15
        assert db.table("t").generation == 1
        assert db.verify() == []
        db.close()


class TestOwnWritesWithPredicates:
    def test_scan_sees_own_matching_update(self, any_db):
        any_db.create_table("t", {"a": DataType.INT64})
        any_db.bulk_insert("t", [{"a": 1}, {"a": 2}])
        txn = any_db.begin()
        ref = txn.query("t", Eq("a", 1)).refs()[0]
        txn.update("t", ref, {"a": 99})
        assert txn.query("t", Eq("a", 99)).count == 1
        assert txn.query("t", Eq("a", 1)).count == 0
        # Other observers see the old state until commit.
        assert any_db.query("t", Eq("a", 99)).count == 0
        txn.commit()
        assert any_db.query("t", Eq("a", 99)).count == 1

    def test_aggregate_within_txn(self, any_db):
        from repro.query.aggregate import aggregate

        any_db.create_table("t", {"a": DataType.INT64})
        any_db.bulk_insert("t", [{"a": 10}, {"a": 20}])
        txn = any_db.begin()
        txn.insert("t", {"a": 30})
        assert aggregate(txn.query("t"), "sum", "a") == 60
        txn.abort()
        assert aggregate(any_db.query("t"), "sum", "a") == 30


class TestLargeTransaction:
    def test_many_ops_single_txn(self, nvm_db):
        """Spans many undo chunks in the persistent txn table."""
        nvm_db.create_table("t", {"a": DataType.INT64})
        txn = nvm_db.begin()
        for i in range(150):
            txn.insert("t", {"a": i})
        txn.commit()
        assert nvm_db.query("t").count == 150

    def test_many_ops_rolled_back_on_crash(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("t", {"a": DataType.INT64})
        txn = db.begin()
        for i in range(150):
            txn.insert("t", {"a": i})
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("t").count == 0
        assert db.last_recovery.txns_rolled_back == 1
        db.close()
