"""Tests for space accounting (nbytes and the engine memory report)."""

import numpy as np
import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.nvm.phash import PHashMap
from repro.nvm.pvector import PVector
from repro.storage.types import DataType
from repro.storage.vector import VolatileVector

from tests.conftest import make_config


class TestNbytes:
    def test_pvector_grows_with_chunks(self, pool):
        v = PVector.create(pool, np.uint64, chunk_capacity=8)
        empty = v.nbytes
        v.extend(np.arange(40, dtype=np.uint64))
        assert v.nbytes == empty + 5 * 8 * 8  # five chunks of 8 u64

    def test_volatile_vector_nbytes(self):
        v = VolatileVector(np.uint32)
        v.extend(np.arange(100, dtype=np.uint32))
        assert v.nbytes >= 400

    def test_phash_nbytes_grows_on_resize(self, pool):
        m = PHashMap.create(pool, capacity=8)
        before = m.nbytes
        for i in range(100):
            m.insert(i, i)
        assert m.nbytes > before


class TestMemoryReport:
    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.NONE])
    def test_report_structure(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        db.create_table("t", {"a": DataType.INT64, "s": DataType.STRING})
        db.create_index("t", "a")
        db.bulk_insert("t", [{"a": i, "s": f"x{i % 9}"} for i in range(500)])
        db.merge("t")
        report = db.memory_report()["t"]
        for key in (
            "main_packed",
            "main_dictionaries",
            "main_mvcc",
            "delta_codes",
            "delta_mvcc",
            "indexes",
            "total",
        ):
            assert key in report
        assert report["total"] == sum(
            v for k, v in report.items() if k != "total"
        )
        assert report["main_packed"] > 0
        assert report["indexes"] > 0
        db.close()

    def test_packing_saves_space(self, tmp_path):
        """Bit-packed main codes are smaller than 4-byte delta codes."""
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        db.create_table("t", {"a": DataType.INT64})
        db.bulk_insert("t", [{"a": i % 4} for i in range(10_000)])
        before = db.memory_report()["t"]["delta_codes"]
        db.merge("t")
        after = db.memory_report()["t"]["main_packed"]
        assert after < before / 4  # 3 bits/code vs 32 bits/code

    def test_report_empty_table(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        report = none_db.memory_report()["t"]
        assert report["total"] >= 0
