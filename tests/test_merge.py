"""Unit tests for the merge process."""

import pytest

from repro.storage.backend import NvmBackend, VolatileBackend
from repro.storage.merge import merge_table
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType


@pytest.fixture(params=["volatile", "nvm"])
def backend(request, pool):
    if request.param == "volatile":
        return VolatileBackend()
    return NvmBackend(pool)


SCHEMA = Schema.of(id=DataType.INT64, tag=DataType.STRING)


def _commit_row(table, values, cid, tid=1):
    ref = table.insert_uncommitted(values, tid)
    mvcc, idx = table.mvcc_for(ref)
    mvcc.set_begin(idx, cid)
    mvcc.set_tid(idx, NO_TID)
    return ref


def _invalidate(table, ref, cid):
    mvcc, idx = table.mvcc_for(ref)
    mvcc.set_end(idx, cid)


class TestMerge:
    def test_moves_delta_to_main(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        for i in range(20):
            _commit_row(table, [i, f"tag{i % 3}"], cid=1)
        table.main, table.delta = merge_table(table, backend)
        assert table.main_row_count == 20
        assert table.delta_row_count == 0
        assert table.main.decode_column(0) == list(range(20))

    def test_drops_invalidated_rows(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        refs = [_commit_row(table, [i, "x"], cid=1) for i in range(10)]
        for ref in refs[:4]:
            _invalidate(table, ref, cid=2)
        table.main, table.delta = merge_table(table, backend)
        assert table.main_row_count == 6
        assert table.main.decode_column(0) == list(range(4, 10))

    def test_drops_uncommitted_garbage(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        _commit_row(table, [1, "keep"], cid=1)
        table.insert_uncommitted([2, "aborted"], tid=9)  # never committed
        table.main, table.delta = merge_table(table, backend)
        assert table.main_row_count == 1
        assert table.main.decode_column(1) == ["keep"]

    def test_second_merge_includes_old_main(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        _commit_row(table, [1, "a"], cid=1)
        table.main, table.delta = merge_table(table, backend)
        _commit_row(table, [2, "b"], cid=2)
        table.main, table.delta = merge_table(table, backend)
        assert table.main_row_count == 2
        assert sorted(table.main.decode_column(0)) == [1, 2]

    def test_main_invalidations_respected(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        ref = _commit_row(table, [1, "dead"], cid=1)
        _commit_row(table, [2, "alive"], cid=1)
        table.main, table.delta = merge_table(table, backend)
        # Invalidate a row that now lives in main.
        from repro.storage.table import pack_rowref

        codes = table.main.decode_column(0)
        dead_idx = codes.index(1)
        _invalidate(table, pack_rowref(False, dead_idx), cid=2)
        table.main, table.delta = merge_table(table, backend)
        assert table.main.decode_column(0) == [2]

    def test_dictionary_pruned(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        ref = _commit_row(table, [1, "onlyused once"], cid=1)
        _commit_row(table, [2, "kept"], cid=1)
        _invalidate(table, ref, cid=2)
        table.main, table.delta = merge_table(table, backend)
        assert table.main.columns[1].dictionary.values_list() == ["kept"]

    def test_dictionary_sorted_after_merge(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        for value in ["zebra", "apple", "mango"]:
            _commit_row(table, [0, value], cid=1)
        table.main, table.delta = merge_table(table, backend)
        assert table.main.columns[1].dictionary.values_list() == [
            "apple",
            "mango",
            "zebra",
        ]

    def test_nulls_survive_merge(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        _commit_row(table, [None, "x"], cid=1)
        _commit_row(table, [5, None], cid=1)
        table.main, table.delta = merge_table(table, backend)
        assert table.main.decode_column(0) == [None, 5]
        assert table.main.decode_column(1) == ["x", None]

    def test_begin_cids_preserved(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        _commit_row(table, [1, "a"], cid=3)
        _commit_row(table, [2, "b"], cid=7)
        table.main, table.delta = merge_table(table, backend)
        begins = sorted(int(b) for b in table.main.mvcc.begin_array())
        assert begins == [3, 7]
        # A snapshot between the two commits sees only the first row.
        assert list(table.main.mvcc.visible_mask(5)).count(True) == 1

    def test_merge_empty_table(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        table.main, table.delta = merge_table(table, backend)
        assert table.main_row_count == 0
        assert table.delta_row_count == 0

    def test_new_delta_keeps_persistent_dict_setting(self, pool):
        backend = NvmBackend(pool)
        table = Table.create(1, "t", SCHEMA, backend, persistent_dict_index=True)
        _commit_row(table, [1, "a"], cid=1)
        __, new_delta = merge_table(table, backend)
        assert all(
            d.persistent_lookup is not None for d in new_delta.dictionaries
        )
