"""Property: merging never changes what any future snapshot can see."""

from hypothesis import given, settings, strategies as st

from repro.storage.backend import VolatileBackend
from repro.storage.merge import merge_table
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.query.scan import scan

SCHEMA = Schema.of(k=DataType.INT64, s=DataType.STRING, f=DataType.FLOAT64)

# Each row: (key, string-or-None, float-or-None, begin_cid, end_cid-or-None)
_rows = st.lists(
    st.tuples(
        st.integers(0, 15),
        st.one_of(st.none(), st.text(max_size=4)),
        st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
        st.integers(1, 8),
        st.one_of(st.none(), st.integers(1, 8)),
    ),
    max_size=30,
)


def _build(rows):
    backend = VolatileBackend()
    table = Table.create(1, "t", SCHEMA, backend)
    for key, text, number, begin, end in rows:
        if end is not None and end < begin:
            begin, end = end, begin
        ref = table.insert_uncommitted([key, text, number], tid=1)
        mvcc, idx = table.mvcc_for(ref)
        mvcc.set_begin(idx, begin)
        mvcc.set_tid(idx, NO_TID)
        if end is not None:
            mvcc.set_end(idx, end)
    return backend, table


def _visible_multiset(table, snapshot):
    result = scan(table, snapshot_cid=snapshot)
    return sorted(
        zip(result.column("k"), result.column("s"), result.column("f")),
        key=repr,
    )


@given(rows=_rows, merge_twice=st.booleans())
@settings(max_examples=60, deadline=None)
def test_merge_preserves_future_snapshots(rows, merge_twice):
    backend, table = _build(rows)
    # Snapshots at/after the quiesce horizon (max cid used = 8) must see
    # the same rows before and after the merge. (Rows invalidated before
    # the horizon are gone for every such snapshot, so dropping them is
    # invisible; historical snapshots < 8 are intentionally not preserved
    # by the merge, as in Hyrise.)
    horizon = 8
    before = {s: _visible_multiset(table, s) for s in (horizon, horizon + 5)}
    table.main, table.delta = merge_table(table, backend)
    if merge_twice:
        table.main, table.delta = merge_table(table, backend)
    for snapshot, expected in before.items():
        assert _visible_multiset(table, snapshot) == expected


@given(rows=_rows)
@settings(max_examples=40, deadline=None)
def test_merge_dictionary_invariants(rows):
    backend, table = _build(rows)
    table.main, table.delta = merge_table(table, backend)
    for col in table.main.columns:
        values = col.dictionary.values_list()
        # Sorted and distinct.
        assert values == sorted(set(values), key=lambda v: v)
        # Every code in range (checked by the shared validator too).
        codes = col.codes()
        if codes.size:
            assert int(codes.max()) <= col.null_code
    # Delta is fresh and empty.
    assert table.delta.row_count == 0
