"""MVCC visibility-cache correctness: hits are free, never stale.

The cache keeps DRAM copies of begin/end stamped by
``(mutation count, row count)``; every publish (insert), commit fix-up,
rollback, and merge must invalidate it — a scan may never see a stale
mask — and a repeated read-only scan must cost zero NVM vector reads.
"""

import threading

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.obs import get_registry
from repro.query.aggregate import aggregate
from repro.query.predicate import Gt
from repro.storage.types import DataType

from tests.conftest import make_config

SCHEMA = {"k": DataType.INT64, "g": DataType.STRING}


def _counters():
    snap = get_registry().counters_snapshot()
    return (
        snap.get("mvcc_cache_hits_total", 0),
        snap.get("mvcc_cache_misses_total", 0),
    )


class TestInvalidation:
    def test_insert_visible_after_cached_scan(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(10)])
        assert none_db.query("t").count == 10
        assert none_db.query("t").count == 10  # cached
        none_db.insert("t", {"k": 10, "g": "b"})
        assert none_db.query("t").count == 11

    def test_uncommitted_rows_stay_invisible(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": 0, "g": "a"}])
        assert none_db.query("t").count == 1
        txn = none_db.begin()
        txn.insert("t", {"k": 1, "g": "b"})
        # The insert grew the begin vector -> cache invalidated, but the
        # row is uncommitted: outside observers still see one row.
        assert none_db.query("t").count == 1
        txn.commit()
        assert none_db.query("t").count == 2

    def test_delete_invalidates_after_cached_scan(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(5)])
        assert none_db.query("t").count == 5  # warm the cache
        with none_db.begin() as txn:
            for ref in txn.query("t", Gt("k", 2)).refs():
                txn.delete("t", ref)
        # The commit fixed up end_cid in place (no length change): the
        # mutation counter must have invalidated the cached end array.
        assert sorted(none_db.query("t").column("k")) == [0, 1, 2]

    def test_update_invalidates_after_cached_scan(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "old"} for i in range(4)])
        assert none_db.query("t").count == 4
        with none_db.begin() as txn:
            for ref in txn.query("t", Gt("k", 1)).refs():
                txn.update("t", ref, {"g": "new"})
        grades = none_db.query("t").column("g")
        assert sorted(grades) == ["new", "new", "old", "old"]

    def test_rollback_restores_visibility(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(3)])
        assert none_db.query("t").count == 3
        txn = none_db.begin()
        for ref in txn.query("t").refs():
            txn.delete("t", ref)
        assert none_db.query("t").count == 3  # uncommitted delete hidden
        txn.abort()
        assert none_db.query("t").count == 3

    def test_merge_scan_stays_correct(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(20)])
        assert none_db.query("t").count == 20
        none_db.merge("t")
        assert none_db.query("t").count == 20
        none_db.insert("t", {"k": 20, "g": "b"})
        assert none_db.query("t").count == 21

    def test_concurrent_inserts_never_yield_stale_counts(self, none_db):
        """Readers racing a writer must only ever observe committed
        prefixes — a stale cached mask would show a count that later
        *decreases* or exceeds what was committed."""
        none_db.create_table("t", SCHEMA)
        batches = 20
        stop = threading.Event()
        seen: list[int] = []
        errors: list[str] = []

        def reader():
            last = 0
            while not stop.is_set():
                count = none_db.query("t").count
                if count < last:
                    errors.append(f"count went backwards: {last} -> {count}")
                    return
                last = count
                seen.append(count)

        thread = threading.Thread(target=reader)
        thread.start()
        for batch in range(batches):
            none_db.bulk_insert(
                "t", [{"k": batch * 5 + i, "g": "a"} for i in range(5)]
            )
        stop.set()
        thread.join()
        assert not errors
        assert none_db.query("t").count == batches * 5
        assert all(count % 5 == 0 for count in seen), (
            "reader observed a partially published batch"
        )


class TestZeroReadTraffic:
    def test_repeated_scan_reads_nothing(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        try:
            db.create_table("t", SCHEMA)
            db.bulk_insert("t", [{"k": i, "g": "ab"[i % 2]} for i in range(2000)])
            db.merge("t")
            db.bulk_insert("t", [{"k": i, "g": "c"} for i in range(50)])
            stats = db._pool.stats

            first = aggregate(db.query("t", Gt("k", 5)), "count")
            hits0, misses0 = _counters()
            stats.reset()
            second = aggregate(db.query("t", Gt("k", 5)), "count")
            hits1, misses1 = _counters()

            assert first == second
            # Cache hit: not a single byte read from the NVM pool, no
            # new views, and the obs counters prove the hit.
            assert stats.bytes_read == 0
            assert stats.views_created == 0
            assert hits1 > hits0
            assert misses1 == misses0
        finally:
            db.close()

    def test_miss_then_hit_counters(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": 1, "g": "a"}])
        hits0, misses0 = _counters()
        none_db.query("t")
        hits1, misses1 = _counters()
        assert misses1 > misses0  # first scan fills the cache
        none_db.query("t")
        hits2, misses2 = _counters()
        assert hits2 > hits1
        assert misses2 == misses1


class TestWatermark:
    def test_merged_main_takes_all_visible_path(self, none_db):
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(100)])
        none_db.merge("t")
        table = none_db.table("t")
        mvcc = table.main.mvcc
        mask = mvcc.visible_mask(none_db.last_cid)
        assert mask.all() and mask.size == 100
        # The watermark span covers every snapshot at or above the
        # merge horizon; below it, per-row compares still apply.
        _, _, _, lo, hi = mvcc._visibility_arrays()
        assert lo <= none_db.last_cid < hi

    def test_mask_is_fresh_not_cached_storage(self, none_db):
        """Callers AND into the returned mask in place; a second call
        must not observe the mutation."""
        none_db.create_table("t", SCHEMA)
        none_db.bulk_insert("t", [{"k": i, "g": "a"} for i in range(8)])
        mvcc = none_db.table("t").delta.mvcc
        mask = mvcc.visible_mask(none_db.last_cid)
        mask[:] = False
        again = mvcc.visible_mask(none_db.last_cid)
        assert again.all()
