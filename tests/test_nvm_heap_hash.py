"""Unit tests for the blob heap and the persistent hash multimap."""


from repro.nvm.pheap import PHeap
from repro.nvm.phash import PHashMap
from repro.nvm.pool import PMemMode, PMemPool


class TestPHeap:
    def test_bytes_roundtrip(self, pool):
        heap = PHeap(pool)
        off = heap.put(b"\x00\x01binary\xff")
        assert heap.get(off) == b"\x00\x01binary\xff"

    def test_empty_blob(self, pool):
        heap = PHeap(pool)
        off = heap.put(b"")
        assert heap.get(off) == b""

    def test_string_roundtrip(self, pool):
        heap = PHeap(pool)
        off = heap.put_str("schnörkel-ünïcode ✓")
        assert heap.get_str(off) == "schnörkel-ünïcode ✓"

    def test_many_blobs_distinct(self, pool):
        heap = PHeap(pool)
        offs = [heap.put_str(f"value-{i}") for i in range(200)]
        assert len(set(offs)) == 200
        for i, off in enumerate(offs):
            assert heap.get_str(off) == f"value-{i}"

    def test_counters(self, pool):
        heap = PHeap(pool)
        heap.put(b"abc")
        assert heap.blobs_written == 1
        assert heap.bytes_written == 7  # 4B length + 3B payload

    def test_survives_crash_when_flushed(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        heap = PHeap(pool)
        off = heap.put_str("durable")
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        assert PHeap(pool).get_str(off) == "durable"
        pool.close()


class TestPHashMap:
    def test_empty_lookup(self, pool):
        m = PHashMap.create(pool)
        assert m.get_all(42) == []
        assert m.get_first(42) is None
        assert len(m) == 0

    def test_insert_and_lookup(self, pool):
        m = PHashMap.create(pool)
        m.insert(1, 100)
        m.insert(2, 200)
        assert m.get_first(1) == 100
        assert m.get_first(2) == 200
        assert len(m) == 2

    def test_multimap_duplicates(self, pool):
        m = PHashMap.create(pool)
        for v in (5, 6, 7):
            m.insert(9, v)
        assert sorted(m.get_all(9)) == [5, 6, 7]

    def test_resize_preserves_entries(self, pool):
        m = PHashMap.create(pool, capacity=8)
        for i in range(500):
            m.insert(i, i * 2)
        assert len(m) == 500
        assert m.capacity > 8
        for i in range(0, 500, 37):
            assert m.get_first(i) == i * 2

    def test_remove_one(self, pool):
        m = PHashMap.create(pool)
        m.insert(1, 10)
        m.insert(1, 11)
        assert m.remove_one(1, 10)
        assert m.get_all(1) == [11]
        assert not m.remove_one(1, 10)
        assert len(m) == 1

    def test_remove_missing_key(self, pool):
        m = PHashMap.create(pool)
        assert not m.remove_one(77, 1)

    def test_lookup_after_tombstone_probe_chain(self, pool):
        # Insert colliding entries, tombstone the first, and make sure
        # probing continues past the tombstone.
        m = PHashMap.create(pool, capacity=8)
        m.insert(0, 1)
        m.insert(8, 2)  # may collide at capacity 8 after hashing
        m.insert(16, 3)
        m.remove_one(8, 2)
        assert m.get_first(0) == 1
        assert m.get_first(16) == 3

    def test_items_iterates_all(self, pool):
        m = PHashMap.create(pool)
        expected = {(i, i + 1) for i in range(50)}
        for k, v in expected:
            m.insert(k, v)
        assert set(m.items()) == expected

    def test_attach_recounts_exactly(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        m = PHashMap.create(pool)
        for i in range(123):
            m.insert(i, i)
        off = m.offset
        pool.set_root(off)
        pool.close()
        pool = PMemPool.open(pool_dir)
        m2 = PHashMap.attach(pool, pool.root_offset)
        assert len(m2) == 123
        assert m2.get_first(77) == 77
        m2.insert(999, 1)
        assert len(m2) == 124
        pool.close()

    def test_torn_insert_invisible(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        m = PHashMap.create(pool)
        m.insert(1, 10)
        # Write key/value of a second entry without the FILLED state.
        import repro.nvm.phash as ph
        idx = ph._hash(2) % m.capacity
        off = m._slot_offset(idx)
        pool.write_u64(off + 8, 2)
        pool.write_u64(off + 16, 20)
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        m2 = PHashMap.attach(pool, m.offset)
        assert m2.get_first(2) is None
        assert m2.get_first(1) == 10
        assert len(m2) == 1
        pool.close()


class TestArenaAllocator:
    def test_reuse_after_free(self, pool):
        from repro.nvm.allocator import ArenaAllocator

        alloc = ArenaAllocator(pool)
        a = alloc.allocate(100)
        alloc.free(a, 100)
        b = alloc.allocate(100)
        assert b == a
        assert alloc.reused_blocks == 1

    def test_size_classes(self):
        from repro.nvm.allocator import size_class

        assert size_class(1) == 64
        assert size_class(64) == 64
        assert size_class(65) == 128
        assert size_class(1000) == 1024

    def test_free_bytes_cached(self, pool):
        from repro.nvm.allocator import ArenaAllocator

        alloc = ArenaAllocator(pool)
        a = alloc.allocate(100)  # class 128
        alloc.free(a, 100)
        assert alloc.free_bytes_cached() == 128
