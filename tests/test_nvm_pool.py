"""Unit tests for the persistent memory pool."""

import numpy as np
import pytest

from repro.nvm.errors import PoolCorruptError, PoolFullError, PoolModeError
from repro.nvm.latency import LatencyModel
from repro.nvm.pool import HEADER_SIZE, PMemMode, PMemPool

EXTENT = 2 * 1024 * 1024


class TestLifecycle:
    def test_create_and_reopen(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=EXTENT)
        off = pool.allocate(128)
        pool.write(off, b"hello")
        pool.persist(off, 5)
        pool.set_root(off)
        pool.close()
        again = PMemPool.open(pool_dir)
        assert again.read(again.root_offset, 5) == b"hello"
        again.close()

    def test_create_twice_fails(self, pool_dir):
        PMemPool.create(pool_dir, extent_size=EXTENT).close()
        with pytest.raises(PoolModeError):
            PMemPool.create(pool_dir, extent_size=EXTENT)

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(PoolCorruptError):
            PMemPool.open(str(tmp_path / "nope"))

    def test_exists(self, pool_dir):
        assert not PMemPool.exists(pool_dir)
        PMemPool.create(pool_dir, extent_size=EXTENT).close()
        assert PMemPool.exists(pool_dir)

    def test_clean_shutdown_flag(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=EXTENT)
        pool.close(clean=True)
        pool = PMemPool.open(pool_dir)
        assert pool.was_clean_shutdown
        pool.mark_opened()
        pool.close(clean=False)
        pool = PMemPool.open(pool_dir)
        assert not pool.was_clean_shutdown
        pool.close()

    def test_bad_extent_size_rejected(self, pool_dir):
        with pytest.raises(ValueError):
            PMemPool.create(pool_dir, extent_size=1000)

    def test_corrupt_magic_detected(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=EXTENT)
        pool.close()
        import os
        path = os.path.join(pool_dir, "extent_0000.pm")
        with open(path, "r+b") as f:
            f.write(b"\xde\xad\xbe\xef")
        with pytest.raises(PoolCorruptError):
            PMemPool.open(pool_dir)


class TestReadWrite:
    def test_bytes_roundtrip(self, pool):
        off = pool.allocate(64)
        pool.write(off, b"abcdef")
        assert pool.read(off, 6) == b"abcdef"

    def test_u64_roundtrip(self, pool):
        off = pool.allocate(64)
        pool.write_u64(off, 2**63 + 17)
        assert pool.read_u64(off) == 2**63 + 17

    def test_u32_roundtrip(self, pool):
        off = pool.allocate(64)
        pool.write_u32(off, 2**31 + 3)
        assert pool.read_u32(off) == 2**31 + 3

    def test_i64_roundtrip(self, pool):
        off = pool.allocate(64)
        pool.write_i64(off, -12345)
        assert pool.read_i64(off) == -12345

    def test_unaligned_u64_rejected(self, pool):
        off = pool.allocate(64)
        with pytest.raises(PoolModeError):
            pool.write_u64(off + 3, 1)

    def test_array_roundtrip(self, pool):
        arr = np.arange(100, dtype=np.uint64)
        off = pool.allocate(arr.nbytes)
        pool.write_array(off, arr)
        assert (pool.read_array(off, np.uint64, 100) == arr).all()

    def test_view_is_zero_copy_and_readonly(self, pool):
        arr = np.arange(50, dtype=np.int64)
        off = pool.allocate(arr.nbytes)
        pool.write_array(off, arr)
        view = pool.view(off, np.int64, 50)
        assert (view == arr).all()
        assert not view.flags.writeable
        pool.write_array(off, arr * 2)
        assert view[1] == 2  # zero copy: sees the new store

    def test_view_survives_growth(self, pool):
        off = pool.allocate(8)
        pool.write_u64(off, 42)
        view = pool.view(off, np.uint64, 1)
        # Force extent growth, then check the old view still reads.
        pool.allocate(EXTENT - 1024)
        pool.allocate(EXTENT // 2)
        assert pool.size >= 2 * EXTENT
        assert view[0] == 42


class TestAllocator:
    def test_alignment(self, pool):
        a = pool.allocate(10, align=64)
        assert a % 64 == 0
        b = pool.allocate(10, align=64)
        assert b % 64 == 0 and b > a

    def test_never_spans_extent(self, pool):
        # Allocate nearly a full extent, then ask for a block that would
        # straddle the boundary.
        pool.allocate(EXTENT - HEADER_SIZE - 4096)
        off = pool.allocate(64 * 1024)
        assert off // EXTENT == (off + 64 * 1024 - 1) // EXTENT

    def test_oversized_allocation_rejected(self, pool):
        with pytest.raises(PoolFullError):
            pool.allocate(EXTENT + 1)

    def test_zero_allocation_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.allocate(0)

    def test_growth_persists_across_reopen(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=EXTENT)
        for _ in range(3):
            pool.allocate(EXTENT - 4096)
        size = pool.size
        assert size >= 3 * EXTENT
        pool.close()
        again = PMemPool.open(pool_dir)
        assert again.size == size
        again.close()

    def test_head_persisted_per_allocation(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=EXTENT, mode=PMemMode.STRICT)
        first = pool.allocate(256)
        pool.crash()
        again = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        second = again.allocate(256)
        assert second >= first + 256
        again.close()


class TestStrictCrashSemantics:
    def test_unflushed_store_lost(self, strict_pool, pool_dir):
        off = strict_pool.allocate(64)
        strict_pool.write_u64(off, 1)
        strict_pool.persist(off, 8)
        strict_pool.write_u64(off, 2)  # no flush
        strict_pool.crash()
        pool = PMemPool.open(pool_dir)
        assert pool.read_u64(off) == 1
        pool.close()

    def test_flushed_store_survives(self, strict_pool, pool_dir):
        off = strict_pool.allocate(64)
        strict_pool.write_u64(off, 7)
        strict_pool.persist(off, 8)
        strict_pool.crash()
        pool = PMemPool.open(pool_dir)
        assert pool.read_u64(off) == 7
        pool.close()

    def test_flush_without_write_is_noop(self, strict_pool):
        off = strict_pool.allocate(64)
        strict_pool.flush(off, 64)  # nothing dirty — fine
        strict_pool.drain()

    def test_partial_flush_line_granularity(self, strict_pool, pool_dir):
        off = strict_pool.allocate(128)
        strict_pool.write(off, b"A" * 128)
        strict_pool.flush(off, 64)  # only the first line
        strict_pool.drain()
        strict_pool.crash()
        pool = PMemPool.open(pool_dir)
        assert pool.read(off, 64) == b"A" * 64
        assert pool.read(off + 64, 64) == b"\x00" * 64
        pool.close()

    def test_survivor_fraction_one_keeps_everything(self, strict_pool, pool_dir):
        off = strict_pool.allocate(64)
        strict_pool.write_u64(off, 9)
        strict_pool.crash(survivor_fraction=1.0, seed=1)
        pool = PMemPool.open(pool_dir)
        assert pool.read_u64(off) == 9
        pool.close()

    def test_survivor_fraction_is_seeded(self, tmp_path):
        outcomes = []
        for run in range(2):
            d = str(tmp_path / f"p{run}")
            pool = PMemPool.create(d, extent_size=EXTENT, mode=PMemMode.STRICT)
            offs = [pool.allocate(64) for _ in range(32)]
            for i, off in enumerate(offs):
                pool.write_u64(off, i + 1)
            pool.crash(survivor_fraction=0.5, seed=99)
            again = PMemPool.open(d)
            outcomes.append(tuple(again.read_u64(off) for off in offs))
            again.close()
        assert outcomes[0] == outcomes[1]

    def test_rewrite_after_flush_reverts_to_flushed_value(
        self, strict_pool, pool_dir
    ):
        off = strict_pool.allocate(64)
        strict_pool.write_u64(off, 5)
        strict_pool.persist(off, 8)
        strict_pool.write_u64(off, 6)
        strict_pool.write_u64(off, 7)  # still unflushed
        strict_pool.crash()
        pool = PMemPool.open(pool_dir)
        assert pool.read_u64(off) == 5
        pool.close()


class TestAccounting:
    def test_write_and_flush_counted(self, pool):
        off = pool.allocate(256)
        before_flushes = pool.stats.lines_flushed
        pool.write(off, b"x" * 200)
        pool.flush(off, 200)
        pool.drain()
        assert pool.stats.bytes_written >= 200
        assert pool.stats.lines_flushed - before_flushes == 4  # 200B -> 4 lines
        assert pool.stats.drain_calls >= 1

    def test_modelled_time_scales_with_multiplier(self, pool_dir):
        model = LatencyModel(write_multiplier=4.0)
        pool = PMemPool.create(pool_dir, extent_size=EXTENT, latency=model)
        off = pool.allocate(64)
        pool.write_u64(off, 1)
        pool.persist(off, 8)
        single = LatencyModel(write_multiplier=1.0)
        base = pool.stats.lines_flushed * single.write_ns_per_line
        assert pool.stats.modelled_ns() > base
        pool.close()

    def test_stats_reset(self, pool):
        off = pool.allocate(64)
        pool.write_u64(off, 1)
        pool.stats.reset()
        assert pool.stats.bytes_written == 0
        assert pool.stats.allocations == 0
