"""Unit tests for the persistent vector."""

import numpy as np
import pytest

from repro.nvm.errors import NvmError
from repro.nvm.pool import PMemMode, PMemPool
from repro.nvm.pvector import PVector


class TestBasics:
    def test_empty(self, pool):
        v = PVector.create(pool, np.uint64)
        assert len(v) == 0
        assert v.to_numpy().size == 0

    def test_append_returns_indexes(self, pool):
        v = PVector.create(pool, np.uint64)
        assert v.append(10) == 0
        assert v.append(20) == 1
        assert int(v.get(0)) == 10
        assert int(v.get(1)) == 20

    def test_getitem(self, pool):
        v = PVector.create(pool, np.int64)
        v.append(-5)
        assert int(v[0]) == -5

    def test_all_dtypes(self, pool):
        for dtype, value in [
            (np.uint8, 200),
            (np.uint16, 60000),
            (np.uint32, 2**31),
            (np.uint64, 2**63),
            (np.int64, -(2**62)),
            (np.float64, 3.25),
        ]:
            v = PVector.create(pool, dtype)
            v.append(value)
            assert v.get(0) == np.asarray(value, dtype=dtype)

    def test_unsupported_dtype_rejected(self, pool):
        with pytest.raises(NvmError):
            PVector.create(pool, np.float32)

    def test_bad_chunk_capacity_rejected(self, pool):
        with pytest.raises(ValueError):
            PVector.create(pool, np.uint64, chunk_capacity=0)

    def test_out_of_range_get(self, pool):
        v = PVector.create(pool, np.uint64)
        v.append(1)
        with pytest.raises(IndexError):
            v.get(1)

    def test_out_of_range_set(self, pool):
        v = PVector.create(pool, np.uint64)
        with pytest.raises(IndexError):
            v.set(0, 1)


class TestGrowth:
    def test_spans_many_chunks(self, pool):
        v = PVector.create(pool, np.uint64, chunk_capacity=8)
        for i in range(100):
            v.append(i)
        assert len(v) == 100
        assert list(v.to_numpy()) == list(range(100))

    def test_directory_growth(self, pool):
        # 16 initial dir slots * chunk_capacity 2 = 32 elements before the
        # directory must grow.
        v = PVector.create(pool, np.uint64, chunk_capacity=2)
        v.extend(np.arange(200, dtype=np.uint64))
        assert list(v.to_numpy()) == list(range(200))

    def test_extend_across_chunk_boundaries(self, pool):
        v = PVector.create(pool, np.uint32, chunk_capacity=16)
        v.append(99)
        v.extend(np.arange(50, dtype=np.uint32))
        assert len(v) == 51
        assert int(v.get(0)) == 99
        assert int(v.get(50)) == 49

    def test_extend_empty(self, pool):
        v = PVector.create(pool, np.uint64)
        v.extend(np.empty(0, dtype=np.uint64))
        assert len(v) == 0

    def test_iter_views_cover_exact_prefix(self, pool):
        v = PVector.create(pool, np.uint64, chunk_capacity=8)
        v.extend(np.arange(20, dtype=np.uint64))
        views = list(v.iter_views())
        assert [len(view) for view in views] == [8, 8, 4]
        assert list(np.concatenate(views)) == list(range(20))


class TestPersistence:
    def test_attach_after_clean_close(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024)
        v = PVector.create(pool, np.uint64, chunk_capacity=4)
        v.extend(np.arange(37, dtype=np.uint64))
        off = v.offset
        pool.set_root(off)
        pool.close()
        pool = PMemPool.open(pool_dir)
        v2 = PVector.attach(pool, pool.root_offset)
        assert list(v2.to_numpy()) == list(range(37))
        v2.append(37)
        assert len(v2) == 38
        pool.close()

    def test_torn_append_invisible(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        v = PVector.create(pool, np.uint64)
        v.append(1)
        v.append(2)
        off = v.offset
        pool.set_root(off)
        # Simulate a torn append: element written but size store unflushed.
        # We model it by writing size directly without flushing.
        pool.write_u64(off, 3)
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        v2 = PVector.attach(pool, pool.root_offset)
        assert len(v2) == 2
        pool.close()

    def test_published_appends_survive_crash(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        v = PVector.create(pool, np.uint64, chunk_capacity=4)
        for i in range(19):
            v.append(i * 3)
        pool.set_root(v.offset)
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        v2 = PVector.attach(pool, pool.root_offset)
        assert list(v2.to_numpy()) == [i * 3 for i in range(19)]
        pool.close()

    def test_unpersisted_set_lost(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        v = PVector.create(pool, np.uint64)
        v.append(5)
        pool.set_root(v.offset)
        v.set(0, 99, persist=False)
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        v2 = PVector.attach(pool, pool.root_offset)
        assert int(v2.get(0)) == 5
        pool.close()

    def test_persisted_set_survives(self, pool_dir):
        pool = PMemPool.create(pool_dir, extent_size=2 * 1024 * 1024, mode=PMemMode.STRICT)
        v = PVector.create(pool, np.uint64)
        v.append(5)
        pool.set_root(v.offset)
        v.set(0, 99, persist=True)
        pool.crash()
        pool = PMemPool.open(pool_dir, mode=PMemMode.STRICT)
        v2 = PVector.attach(pool, pool.root_offset)
        assert int(v2.get(0)) == 99
        pool.close()
