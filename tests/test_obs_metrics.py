"""Metrics registry: thread safety, disabled mode, export formats."""

import json
import threading

import pytest

from repro.obs.export import to_json, to_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    generation,
    get_registry,
    set_registry,
)


def _hammer(n_threads, fn):
    """Run fn(thread_index) on n_threads threads; re-raise any failure."""
    errors = []

    def run(i):
        try:
            fn(i)
        except Exception as exc:  # pragma: no cover - diagnostic path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestCounter:
    def test_no_lost_updates_under_concurrency(self):
        counter = Counter()
        per_thread = 5000
        _hammer(16, lambda i: [counter.inc() for _ in range(per_thread)])
        assert counter.value == 16 * per_thread

    def test_inc_amount_and_reset(self):
        counter = Counter()
        counter.inc(7)
        counter.inc(3)
        assert counter.value == 10
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_add(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_concurrent_add_exact(self):
        gauge = Gauge()
        _hammer(8, lambda i: [gauge.add(1.0) for _ in range(1000)])
        assert gauge.value == 8000.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(buckets=[0.001, 0.01, 0.1])
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        # Cumulative counts per upper bound, +Inf holds everything.
        assert snap["buckets"]["0.001"] == 1
        assert snap["buckets"]["0.01"] == 2
        assert snap["buckets"]["0.1"] == 3
        assert snap["buckets"]["+Inf"] == 4
        assert snap["mean"] == pytest.approx(snap["sum"] / 4)

    def test_snapshot_never_torn_under_concurrent_observe(self):
        """A snapshot taken mid-write still satisfies +Inf == count."""
        hist = Histogram(buckets=[0.001, 0.01, 0.1, 1.0])
        stop = threading.Event()
        torn = []

        def writer():
            i = 0
            while not stop.is_set():
                hist.observe((i % 1000) / 500.0)
                i += 1

        def reader():
            for _ in range(2000):
                snap = hist.snapshot()
                if snap["buckets"]["+Inf"] != snap["count"]:
                    torn.append(snap)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert not torn

    def test_empty_and_default_buckets(self):
        hist = Histogram()
        assert hist.bounds == tuple(sorted(DEFAULT_BUCKETS))
        assert hist.snapshot()["count"] == 0
        with pytest.raises(ValueError):
            Histogram(buckets=[])

    def test_snapshot_json_serializable(self):
        hist = Histogram()
        hist.observe(0.003)
        json.dumps(hist.snapshot(), sort_keys=True)


class TestRegistry:
    def test_same_series_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", kind="flush")
        b = registry.counter("x_total", kind="flush")
        c = registry.counter("x_total", kind="drain")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("dual")

    def test_concurrent_create_and_inc(self):
        """Racing registrations of one series never drop increments."""
        registry = MetricsRegistry()
        _hammer(
            12,
            lambda i: [
                registry.counter("races_total", shard=i % 3).inc()
                for _ in range(500)
            ],
        )
        total = sum(registry.counters_snapshot().values())
        assert total == 12 * 500

    def test_snapshot_and_families(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c_seconds").observe(0.1)
        snap = registry.snapshot()
        assert snap["a_total"] == 2
        assert snap["b"] == 1.5
        assert snap["c_seconds"]["count"] == 1
        assert registry.families() == {
            "a_total": "counter",
            "b": "gauge",
            "c_seconds": "histogram",
        }

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("r_total")
        counter.inc(9)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.snapshot()["r_total"] == 1

    def test_disabled_registry_hands_out_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("y") is NULL_GAUGE
        assert registry.histogram("z") is NULL_HISTOGRAM
        NULL_COUNTER.inc()
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        assert registry.snapshot() == {}
        assert NULL_COUNTER.value == 0


class TestDefaultRegistry:
    def test_swap_bumps_generation_and_restores(self):
        before = generation()
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
            assert generation() == before + 1
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestExport:
    def _sample_registry(self):
        registry = MetricsRegistry()
        registry.counter("wal_records_total").inc(5)
        registry.counter("persistence_events_total", kind="flush").inc(3)
        registry.gauge("delta_rows").set(42)
        registry.histogram("fsync_seconds", buckets=[0.001, 0.1]).observe(0.05)
        return registry

    def test_to_json_round_trips(self):
        data = json.loads(to_json(self._sample_registry()))
        assert data['persistence_events_total{kind="flush"}'] == 3
        assert data["fsync_seconds"]["count"] == 1

    def test_prometheus_exposition(self):
        text = to_prometheus(self._sample_registry())
        assert "# TYPE wal_records_total counter" in text
        assert 'persistence_events_total{kind="flush"} 3' in text
        assert "# TYPE fsync_seconds histogram" in text
        assert 'fsync_seconds_bucket{le="0.1"} 1' in text
        assert 'fsync_seconds_bucket{le="+Inf"} 1' in text
        assert "fsync_seconds_count 1" in text
        assert text.endswith("\n")
