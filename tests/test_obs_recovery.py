"""End-to-end observability: span-backed recovery, boundary counters,
engine telemetry, and the report CLI.

These are the acceptance tests for the observability subsystem: the
recovery span tree must account for (nearly) all of the recovery wall
time, and the persistence-event counters must agree with the pool's own
access statistics because both are fed from the same choke point.
"""

import json

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.core.sharding import ShardedEngine
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs import boundary
from repro.obs.report import main as report_main
from repro.storage.types import DataType

from tests.conftest import make_config

ITEMS = {"id": DataType.INT64, "name": DataType.STRING}


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate every test in its own default registry."""
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def _load(engine, rows=200):
    engine.create_table("items", ITEMS)
    engine.bulk_insert(
        "items", [{"id": i, "name": f"n{i % 5}"} for i in range(rows)]
    )


class TestRecoverySpans:
    def test_nvm_phases_cover_recovery_wall_time(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        _load(db, 2000)
        db = db.restart()
        report = db.last_recovery
        span = report.span
        assert span.name == "recovery:nvm"
        assert span.finished
        # Phase durations sum to (nearly) the recovery wall time: the
        # driver is instrumented end to end, not sampled. Measured
        # coverage is 95-99%; 90% leaves margin for scheduler noise.
        assert span.child_seconds() >= 0.90 * span.duration_s
        assert span.child_seconds() <= span.duration_s + 1e-9
        assert report.total_seconds == pytest.approx(span.duration_s)
        db.close()

    def test_sharded_nvm_span_tree(self, tmp_path):
        """Acceptance: 4-shard recovery yields a grafted tree whose
        per-shard phases account for each shard's wall time."""
        cfg = make_config(DurabilityMode.NVM, shards=4)
        engine = ShardedEngine(str(tmp_path / "db"), cfg)
        _load(engine, 4000)
        engine.close()

        engine = ShardedEngine(str(tmp_path / "db"), cfg)
        report = engine.last_recovery
        root = report.span
        assert root is not None
        assert root.name == "recovery:sharded:nvm"
        assert root.finished
        assert len(root.children) == 4
        assert report.wall_seconds == pytest.approx(root.duration_s)
        for shard_span in root.children:
            assert shard_span.name == "recovery:nvm"
            phases = {c.name for c in shard_span.children}
            assert phases == {
                "pool_open",
                "catalog_attach",
                "txn_fixup",
                "finalize",
            }
            coverage = shard_span.child_seconds() / shard_span.duration_s
            assert coverage >= 0.90
        # The grafted tree is JSON-able and renders one line per span.
        data = report.as_dict()
        assert len(data["span"]["children"]) == 4
        assert root.render_tree().count("recovery:nvm") == 4
        engine.close()

    def test_log_phases_present_and_timed(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG)
        db = Database(str(tmp_path / "db"), cfg)
        _load(db)
        db.checkpoint()
        db.insert("items", {"id": 999, "name": "tail"})
        db = db.restart()
        span = db.last_recovery.span
        names = [c.name for c in span.children]
        assert names == [
            "checkpoint_load",
            "log_replay",
            "log_reopen",
            "index_rebuild",
        ]
        assert all(c.finished for c in span.children)
        assert span.find("checkpoint_load").duration_s > 0
        db.close()


class TestBoundaryCounters:
    def test_flush_counter_matches_pool_stats(self, tmp_path):
        """Telemetry and the pool's own stats see the same stream."""
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        _load(db)
        stats = db._pool.stats
        assert stats.flush_calls > 0
        assert boundary.events_total("flush") == stats.flush_calls
        assert boundary.events_total("drain") == stats.drain_calls
        snapshot = get_registry().snapshot()
        assert snapshot["nvm_lines_flushed_total"] == stats.lines_flushed
        db.close()

    def test_wal_fsync_counter_matches_writer(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("items", ITEMS)
        # Single-row commits: one WAL record + fsync each (a bulk_insert
        # would coalesce into a single batched record).
        for i in range(20):
            db.insert("items", {"id": i, "name": "x"})
        snapshot = get_registry().snapshot()
        assert boundary.events_total("wal_fsync") >= 20
        assert snapshot["wal_records_total"] >= 20
        assert snapshot["wal_bytes_written_total"] > 0
        assert (
            snapshot["wal_fsync_seconds"]["count"]
            == boundary.events_total("wal_fsync")
        )
        db.close()

    def test_emit_counts_before_hook_kills(self):
        """An event the fault injector kills still counts: the power
        died *at* that boundary, which is the point being enumerated."""
        before = boundary.events_total("flush")

        def hook(kind):
            raise RuntimeError("simulated power failure")

        boundary.set_hook(hook)
        try:
            with pytest.raises(RuntimeError):
                boundary.emit("flush")
        finally:
            boundary.set_hook(None)
        assert boundary.events_total("flush") == before + 1

    def test_fault_inject_module_shares_choke_point(self):
        """repro.fault installs its hook through the same boundary."""
        from repro.fault.inject import set_persistence_hook

        assert set_persistence_hook is boundary.set_hook


class TestEngineTelemetry:
    def test_recovery_and_merge_counters(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        _load(db)
        db.merge("items")
        snapshot = get_registry().snapshot()
        assert snapshot['engine_recoveries_total{mode="nvm"}'] == 1
        assert snapshot["engine_merges_total"] == 1
        assert snapshot["engine_merge_seconds"]["count"] == 1
        db = db.restart()
        snapshot = get_registry().snapshot()
        assert snapshot['engine_recoveries_total{mode="nvm"}'] == 2
        assert snapshot['engine_recovery_seconds{mode="nvm"}']["count"] == 2
        db.close()

    def test_checkpoint_counters(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        _load(db)
        db.checkpoint()
        snapshot = get_registry().snapshot()
        assert snapshot["engine_checkpoints_total"] == 1
        assert snapshot["engine_checkpoint_bytes_total"] > 0
        assert snapshot["engine_checkpoint_seconds"]["count"] == 1
        db.close()

    def test_fanout_histograms_labelled_by_op(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, shards=4)
        engine = ShardedEngine(str(tmp_path / "db"), cfg)
        _load(engine)
        engine.query("items")
        snapshot = get_registry().snapshot()
        for op in ("open", "bulk_insert", "query"):
            exec_h = snapshot[f'shard_fanout_exec_seconds{{op="{op}"}}']
            queue_h = snapshot[f'shard_fanout_queue_seconds{{op="{op}"}}']
            assert exec_h["count"] == 4, op
            assert queue_h["count"] == 4, op
        engine.close()

    def test_metrics_snapshot_shapes(self, tmp_path):
        db = Database(str(tmp_path / "nvm"), make_config(DurabilityMode.NVM))
        _load(db, 20)
        snap = db.metrics_snapshot()
        assert snap["mode"] == "nvm"
        assert 'engine_recoveries_total{mode="nvm"}' in snap["registry"]
        assert snap["recovery"]["mode"] == "nvm"
        json.dumps(snap, sort_keys=True, default=str)
        db.close()

        cfg = make_config(DurabilityMode.LOG, shards=2)
        engine = ShardedEngine(str(tmp_path / "sharded"), cfg)
        _load(engine, 20)
        snap = engine.metrics_snapshot()
        assert snap["shards"] == 2
        assert len(snap["driver"]) == 2
        json.dumps(snap, sort_keys=True, default=str)
        engine.close()

    def test_disabled_registry_keeps_engine_working(self, tmp_path):
        previous = set_registry(MetricsRegistry(enabled=False))
        try:
            db = Database(
                str(tmp_path / "db"), make_config(DurabilityMode.NVM)
            )
            _load(db, 50)
            db.merge("items")
            db = db.restart()
            assert db.query("items").count == 50
            # Counters report nothing; span tracing still works (it is
            # part of the recovery report, not the registry).
            assert get_registry().snapshot() == {}
            assert db.last_recovery.span.finished
            db.close()
        finally:
            set_registry(previous)


class TestReportCLI:
    def test_workload_text(self, capsys):
        assert report_main(["--rows", "300", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "== nvm restart: 300 rows" in out
        assert "== log restart: 300 rows" in out
        assert "pool_open" in out
        assert "log_replay" in out
        assert "== top 5 counters ==" in out

    def test_workload_json(self, capsys):
        assert (
            report_main(["--rows", "200", "--mode", "nvm", "--format", "json"])
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        (workload,) = data["workloads"]
        assert workload["mode"] == "nvm"
        assert workload["recovery"]["span"]["name"] == "recovery:nvm"
        assert "persistence_events_total{kind=\"flush\"}" in data["registry"]

    def test_workload_prometheus(self, capsys):
        assert (
            report_main(
                ["--rows", "200", "--mode", "log", "--format", "prometheus"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE persistence_events_total counter" in out
        assert "wal_records_total" in out

    def test_cli_leaves_default_registry_untouched(self):
        registry = get_registry()
        report_main(["--rows", "100", "--mode", "nvm"])
        assert get_registry() is registry

    def test_replay_mode(self, tmp_path, capsys):
        summary = {
            "workload": "batch",
            "seed": 7,
            "total_violations": 0,
            "configs": [
                {
                    "mode": "nvm",
                    "shards": 1,
                    "survivor_fraction": 0.0,
                    "points_swept": 10,
                    "points_total": 10,
                    "events_by_kind": {"flush": 8, "drain": 2},
                    "recovery": {
                        "runs": 10,
                        "phases": {
                            "pool_open": {
                                "total_seconds": 0.01,
                                "mean_seconds": 0.001,
                                "max_seconds": 0.002,
                            }
                        },
                    },
                    "violations": [],
                }
            ],
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(summary))
        assert report_main(["--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "crash-point sweep: workload=batch" in out
        assert "pool_open" in out
        # Prometheus needs a live registry; replay mode has none.
        assert report_main(["--replay", str(path), "--format", "prometheus"]) == 2
