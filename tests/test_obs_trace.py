"""Span trees and trace_phase: nesting, ambient stacks, rendering."""

import threading

import pytest

from repro.obs.trace import Span, current_span, trace_phase


class TestSpan:
    def test_lifecycle_and_duration(self):
        span = Span("work")
        assert not span.finished
        assert span.duration_s == 0.0
        with span:
            assert not span.finished
            assert span.duration_s >= 0.0
        assert span.finished
        assert span.duration_s > 0.0

    def test_child_helpers(self):
        root = Span("root").start()
        a = root.child("a")
        b = root.child("b", table="items")
        with a:
            pass
        with b:
            pass
        root.finish()
        assert [name for name, _ in root.phase_items()] == ["a", "b"]
        assert root.child_seconds() == pytest.approx(
            a.duration_s + b.duration_s
        )
        assert b.meta == {"table": "items"}

    def test_find_and_walk(self):
        root = Span("root")
        mid = root.child("mid")
        leaf = mid.child("leaf")
        assert root.find("leaf") is leaf
        assert root.find("missing") is None
        assert [s.name for s in root.walk()] == ["root", "mid", "leaf"]

    def test_error_capture(self):
        span = Span("doomed")
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("power failure")
        assert span.finished
        assert span.error == "RuntimeError: power failure"

    def test_as_dict_shape(self):
        with Span("root") as root:
            with trace_phase("phase", parent=root, rows=3):
                pass
        data = root.as_dict()
        assert data["name"] == "root"
        assert data["seconds"] == pytest.approx(root.duration_s)
        (child,) = data["children"]
        assert child["name"] == "phase"
        assert child["meta"] == {"rows": 3}
        assert child["offset_s"] >= 0.0

    def test_render_tree(self):
        with Span("recovery") as root:
            with trace_phase("pool_open", parent=root):
                pass
            with trace_phase("txn_fixup", parent=root):
                pass
        text = root.render_tree()
        assert text.splitlines()[0].startswith("recovery: ")
        assert "├─ pool_open:" in text
        assert "└─ txn_fixup:" in text
        assert "(untraced:" in text


class TestTracePhase:
    def test_ambient_nesting(self):
        assert current_span() is None
        with trace_phase("outer") as outer:
            assert current_span() is outer
            with trace_phase("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
            assert outer.children == [inner]
        assert current_span() is None

    def test_explicit_parent_does_not_capture_ambient(self):
        elsewhere = Span("elsewhere")
        with trace_phase("outer") as outer:
            with trace_phase("graft", parent=elsewhere) as graft:
                pass
        assert graft in elsewhere.children
        assert graft not in outer.children

    def test_detached_root(self):
        with trace_phase("outer") as outer:
            with trace_phase("loner", parent=None) as loner:
                pass
        assert loner not in outer.children

    def test_attached_before_body_runs(self):
        """A phase that dies mid-flight still shows up in the tree."""
        root = Span("root").start()
        with pytest.raises(ValueError):
            with trace_phase("dies", parent=root):
                raise ValueError("boom")
        root.finish()
        assert root.find("dies") is not None
        assert root.find("dies").error == "ValueError: boom"

    def test_thread_local_ambient_stacks(self):
        """Worker threads build detached trees, not grafts onto ours."""
        seen = {}

        def worker():
            seen["ambient"] = current_span()
            with trace_phase("worker-root") as span:
                pass
            seen["span"] = span

        with trace_phase("main-root") as root:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["ambient"] is None
        assert seen["span"] not in root.children
        assert seen["span"].finished
