"""Oracles for the incremental online merge and its maintenance daemon.

The online merge (``Database.merge(..., online=True)``) folds the frozen
delta into a new main generation in bounded chunks while readers and
writers keep running; only the freeze and the cutover are short critical
sections. The tests here check the three promises that design makes:

* scans taken *during* the fold — from the merge thread at every chunk
  boundary and from a concurrent reader thread — are element-equal to
  the quiesced (pre-merge committed) state;
* a crash at any ``merge_chunk`` / ``merge_cutover`` boundary is
  logically invisible after recovery, in NVM and LOG mode alike, and the
  LOG merge record replays deterministically without a checkpoint;
* the metrics-driven :class:`MaintenanceDaemon` schedules merges from
  delta growth (row threshold and fraction-with-floor) without the write
  path ever blocking on a merge.
"""

import shutil
import threading
import time

import pytest

from tests.conftest import make_config
from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.fault.inject import CrashPointInjector, SimulatedPowerFailure
from repro.obs import boundary
from repro.query.predicate import Eq
from repro.storage.types import DataType
from repro.txn.errors import TransactionConflict
from repro.wal.records import MergeRecord, decode_record, encode_record

SCHEMA = {"key": DataType.INT64, "note": DataType.STRING}


def _build_mixed(db: Database, rows: int = 60) -> dict:
    """Main-less table with inserts, updates and deletes committed, so a
    merge has survivors, invalidations and re-inserted versions to fold.
    Returns the committed key -> note mapping."""
    db.create_table("kv", SCHEMA)
    db.insert_many("kv", [{"key": k, "note": f"n{k}"} for k in range(rows)])
    with db.begin() as txn:
        ref = txn.query("kv", Eq("key", 3)).refs()[0]
        txn.update("kv", ref, {"note": "updated"})
    with db.begin() as txn:
        ref = txn.query("kv", Eq("key", rows - 1)).refs()[0]
        txn.delete("kv", ref)
    return {row["key"]: row["note"] for row in db.query("kv").rows()}


def _snapshot(db: Database) -> dict:
    return {row["key"]: row["note"] for row in db.query("kv").rows()}


class TestMidMergeConsistency:
    def test_scans_at_every_chunk_boundary_match_quiesced_state(
        self, tmp_path
    ):
        """The merge thread itself scans at each ``merge_chunk`` event;
        every scan must be element-equal to the quiesced result."""
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, merge_chunk_rows=8),
        )
        expected = _build_mixed(db, rows=60)
        scans: list[dict] = []

        def hook(kind: str) -> None:
            if kind == "merge_chunk":
                scans.append(_snapshot(db))

        boundary.set_hook(hook)
        try:
            db.merge("kv")
        finally:
            boundary.set_hook(None)
        assert len(scans) >= 2  # 60 rows / 8 per chunk: a real fold
        for i, seen in enumerate(scans):
            assert seen == expected, f"scan at chunk boundary {i} diverged"
        assert _snapshot(db) == expected
        assert db.table("kv").generation == 1
        db.close()

    def test_concurrent_reader_thread_sees_stable_state(self, tmp_path):
        """A reader hammering scans from its own thread across the whole
        merge (fold *and* cutover) must never observe a torn state."""
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, merge_chunk_rows=4),
        )
        expected = _build_mixed(db, rows=80)
        mismatches: list[dict] = []
        scan_count = [0]
        merging = threading.Event()
        done = threading.Event()

        def hook(kind: str) -> None:
            if kind == "merge_chunk":
                merging.set()
                time.sleep(0.001)  # widen the window the reader races

        def reader() -> None:
            while not done.is_set():
                seen = _snapshot(db)
                scan_count[0] += 1
                if seen != expected:
                    mismatches.append(seen)

        thread = threading.Thread(target=reader, daemon=True)
        boundary.set_hook(hook)
        try:
            thread.start()
            db.merge("kv")
            assert merging.is_set()
        finally:
            boundary.set_hook(None)
            done.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert scan_count[0] > 0
        assert mismatches == []
        assert _snapshot(db) == expected
        db.close()


class TestConcurrentWritersDuringMerge:
    def test_writers_race_explicit_online_merges(self, tmp_path):
        """Writer threads insert through repeated online merges; nothing
        committed may be lost and every insert must land exactly once."""
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, merge_chunk_rows=4),
        )
        db.create_table("kv", SCHEMA)
        db.insert_many("kv", [{"key": k, "note": f"n{k}"} for k in range(40)])
        per_writer = 40
        errors: list[BaseException] = []

        def writer(base: int) -> None:
            try:
                for i in range(per_writer):
                    key = base + i
                    for _ in range(16):
                        try:
                            db.insert("kv", {"key": key, "note": f"w{key}"})
                            break
                        except TransactionConflict:
                            continue  # cutover moved the rows: retry
                    else:
                        raise RuntimeError(f"insert of {key} never landed")
                    # pace the writer so its lifetime spans several
                    # whole merges — the race is the point of the test
                    time.sleep(0.001)
            except BaseException as exc:  # noqa: BLE001 — collected
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(1000 * (w + 1),), daemon=True)
            for w in range(3)
        ]
        for thread in threads:
            thread.start()
        merges = 0
        while any(t.is_alive() for t in threads):
            try:
                db.merge("kv")
                merges += 1
            except RuntimeError:
                pass  # cutover starved this round; writers keep going
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == []
        assert merges >= 1
        db.merge("kv")
        found = _snapshot(db)
        expected = {k: f"n{k}" for k in range(40)}
        for w in range(3):
            base = 1000 * (w + 1)
            expected.update(
                {base + i: f"w{base + i}" for i in range(per_writer)}
            )
        assert found == expected
        db.close()


# ----------------------------------------------------------------------
# Crash-point sweep over the chunked merge
# ----------------------------------------------------------------------


class TestMergeChunkCrashSweep:
    @pytest.mark.parametrize(
        "mode",
        [DurabilityMode.NVM, DurabilityMode.LOG],
        ids=lambda m: m.value,
    )
    def test_every_chunk_and_cutover_boundary_is_safe(self, tmp_path, mode):
        """Kill the chunked online merge at every boundary it emits; the
        recovered state must equal the pre-merge committed state."""
        config = make_config(
            mode, group_commit_size=1, merge_chunk_rows=8
        )

        db = Database(str(tmp_path / "count"), config)
        expected = _build_mixed(db, rows=40)
        with CrashPointInjector() as counter:
            db.merge("kv")
        total = counter.events
        kinds = counter.by_kind
        db.close()

        # The chunked fold must actually expose multiple chunk
        # boundaries plus the single cutover point.
        assert kinds.get("merge_chunk", 0) >= 2
        assert kinds.get("merge_cutover", 0) == 1
        assert total >= 3

        for point in range(1, total + 1):
            path = str(tmp_path / f"pt{point}")
            db = Database(path, config)
            expected = _build_mixed(db, rows=40)
            with CrashPointInjector(crash_at=point):
                with pytest.raises(SimulatedPowerFailure):
                    db.merge("kv")
                db.crash(seed=point)
            recovered = Database(path, config)
            assert recovered.verify() == [], f"invariants broken at {point}"
            assert _snapshot(recovered) == expected, (
                f"merge crash at boundary {point} changed logical state"
            )
            recovered.close()
            shutil.rmtree(path, ignore_errors=True)


# ----------------------------------------------------------------------
# LOG-mode merge record
# ----------------------------------------------------------------------


class TestMergeRecord:
    def test_roundtrip(self):
        record = MergeRecord(
            table_id=7,
            watermark=5,
            main_mask=(True, False, True, True),
            delta_mask=(False, True, True, False, True),
        )
        buffer = encode_record(record)
        decoded, consumed = decode_record(buffer, 0)
        assert consumed == len(buffer)
        assert decoded == record

    def test_empty_masks_roundtrip(self):
        record = MergeRecord(
            table_id=1, watermark=0, main_mask=(), delta_mask=()
        )
        decoded, _ = decode_record(encode_record(record), 0)
        assert decoded == record

    def test_log_replay_without_checkpoint(self, tmp_path):
        """After an online merge, a LOG restart with no checkpoint must
        replay the merge record at its log position — and land on the
        merged layout with post-merge commits intact."""
        config = make_config(
            DurabilityMode.LOG,
            checkpoint_after_merge=False,
            group_commit_size=1,
        )
        db = Database(str(tmp_path / "db"), config)
        expected = _build_mixed(db, rows=12)
        db.merge("kv")
        db.insert("kv", {"key": 500, "note": "post-merge"})
        expected[500] = "post-merge"
        db.crash(seed=9)

        recovered = Database(str(tmp_path / "db"), config)
        assert recovered.verify() == []
        assert recovered.last_recovery.merges_replayed == 1
        table = recovered.table("kv")
        assert table.generation == 1
        assert _snapshot(recovered) == expected
        # the post-merge insert replays into the rebuilt delta, not main
        assert table.delta_row_count == 1
        recovered.close()


# ----------------------------------------------------------------------
# Maintenance daemon
# ----------------------------------------------------------------------


class TestMaintenanceDaemon:
    def test_disabled_without_merge_policy(self, none_db):
        assert not none_db._maintenance.enabled
        assert not none_db._maintenance.running

    def test_enabled_and_running_with_threshold(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, auto_merge_rows=10),
        )
        assert db._maintenance.enabled
        assert db._maintenance.running
        db.close()
        assert not db._maintenance.running

    def test_fraction_trigger_with_floor(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(
                DurabilityMode.NONE,
                merge_delta_fraction=0.3,
                merge_delta_fraction_floor=4,
                maintenance_interval_s=0.02,
            ),
        )
        db.create_table("kv", SCHEMA)
        # 40 delta rows: fraction 1.0 >= 0.3 and 40 >= floor -> merge
        db.insert_many("kv", [{"key": k, "note": f"n{k}"} for k in range(40)])
        assert db._maintenance.wait_idle(timeout=10.0)
        table = db.table("kv")
        assert table.generation >= 1
        assert table.delta_row_count == 0
        generation = table.generation
        # 2 more delta rows: fraction trips but the floor does not, so
        # the daemon must leave the table alone.
        db.insert_many(
            "kv", [{"key": 100 + k, "note": "small"} for k in range(2)]
        )
        assert db._maintenance.wait_idle(timeout=10.0)
        time.sleep(0.1)
        assert table.generation == generation
        assert table.delta_row_count == 2
        assert db.query("kv").count == 42
        db.close()

    def test_merge_failure_is_counted_and_retried(self, tmp_path):
        from repro.obs import get_registry

        db = Database(
            str(tmp_path / "db"),
            make_config(
                DurabilityMode.NONE,
                auto_merge_rows=2,
                merge_cutover_timeout_s=0.05,
                maintenance_interval_s=0.02,
            ),
        )
        db.create_table("kv", SCHEMA)
        failures = get_registry().counter("maintenance_merge_failures_total")
        before = failures.value
        holder = db.begin()
        holder.insert("kv", {"key": 1, "note": "held"})
        db.insert_many(
            "kv", [{"key": 10 + k, "note": f"n{k}"} for k in range(4)]
        )
        deadline = time.monotonic() + 10.0
        while failures.value == before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert failures.value > before  # cutover starved, counted, survived
        assert db._maintenance.running
        holder.commit()
        deadline = time.monotonic() + 10.0
        while db.table("kv").generation == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert db.table("kv").generation >= 1  # ... and retried to success
        db.close()
