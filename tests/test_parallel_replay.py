"""Parallel log replay: element-equality with serial replay + phases.

The parallel path (``replay_workers > 1``) partitions the log into
per-table queues and drains them with a thread pool; these tests pin
down the ordering argument from :mod:`repro.recovery.parallel_replay`:
whatever the workload — bulk batches, deletes, merges, in-flight
transactions, DDL — the recovered state is element-equal to what the
serial :class:`~repro.recovery.log_recovery.LogReplayer` produces.
"""

import shutil

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.query.predicate import Eq
from repro.recovery.validator import validate_database
from repro.storage.types import DataType

from tests.conftest import make_config

ITEMS = {"id": DataType.INT64, "name": DataType.STRING}


def _snapshot(db):
    """Physical + logical state of every table, for equality checks."""
    state = {"last_cid": db.last_cid, "tables": {}}
    for name in sorted(db.table_names):
        table = db.table(name)
        state["tables"][name] = {
            "main_rows": table.main_row_count,
            "delta_rows": table.delta_row_count,
            "generation": table.generation,
            "visible": db.query(name).columns(),
        }
    return state


def _mixed_workload(path, *, crash=True, leave_in_flight=True):
    """Inserts, bulk batches, deletes, updates, a merge, and DDL.

    ``checkpoint_after_merge`` is off so the merge record stays in the
    replayed tail, and the in-flight transaction's operation records are
    force-synced so the crash deterministically leaves them durable.
    """
    cfg = make_config(
        DurabilityMode.LOG, group_commit_size=1, checkpoint_after_merge=False
    )
    db = Database(path, cfg)
    db.create_table("orders", ITEMS)
    db.create_table("items", ITEMS)
    db.create_table("scratch", ITEMS)
    db.bulk_insert("orders", [{"id": i, "name": f"o{i % 5}"} for i in range(60)])
    for i in range(40):
        db.insert("items", {"id": i, "name": f"i{i % 3}"})
    # Interleave deletes/updates so invalidations land in the log.
    with db.begin() as txn:
        ref = db.query("orders", Eq("id", 3)).refs()[0]
        txn.delete("orders", ref)
        ref = db.query("items", Eq("id", 7)).refs()[0]
        txn.update("items", ref, {"name": "touched"})
    db.merge("orders")
    # Post-merge writes reference the folded layout.
    db.bulk_insert("orders", [{"id": 100 + i, "name": "post"} for i in range(10)])
    db.insert("items", {"id": 999, "name": "late"})
    db.drop_table("scratch")
    if leave_in_flight:
        txn = db.begin()
        txn.insert("items", {"id": 5000, "name": "ghost"})
        ref = db.query("orders", Eq("id", 5)).refs()[0]
        txn.delete("orders", ref)
        db._driver._wal.sync()  # make the in-flight records durable
    if crash:
        db.crash()
        return None
    return db


class TestElementEquality:
    def test_parallel_equals_serial_mixed_workload(self, tmp_path):
        primary = str(tmp_path / "db")
        _mixed_workload(primary)
        twin = str(tmp_path / "twin")
        shutil.copytree(primary, twin)

        serial = Database(primary, make_config(DurabilityMode.LOG))
        parallel = Database(
            twin, make_config(DurabilityMode.LOG, replay_workers=4)
        )
        try:
            assert _snapshot(serial) == _snapshot(parallel)
            s, p = serial.last_recovery, parallel.last_recovery
            assert p.rows_recovered == s.rows_recovered
            assert p.txns_rolled_back == s.txns_rolled_back == 1
            assert p.merges_replayed == s.merges_replayed == 1
            assert not validate_database(
                parallel._tables_by_id.values(), parallel.last_cid
            )
        finally:
            serial.close()
            parallel.close()

    def test_parallel_equals_serial_after_checkpoint(self, tmp_path):
        primary = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(primary, cfg)
        db.create_table("items", ITEMS)
        db.bulk_insert("items", [{"id": i, "name": "x"} for i in range(30)])
        db.checkpoint()
        for i in range(10):
            db.insert("items", {"id": 100 + i, "name": "tail"})
        db.crash()
        twin = str(tmp_path / "twin")
        shutil.copytree(primary, twin)

        serial = Database(primary, make_config(DurabilityMode.LOG))
        parallel = Database(
            twin, make_config(DurabilityMode.LOG, replay_workers=4)
        )
        try:
            assert _snapshot(serial) == _snapshot(parallel)
            # Both replays start at the checkpoint LSN.
            assert (
                parallel.last_recovery.log_records_replayed
                == serial.last_recovery.log_records_replayed
            )
            assert parallel.last_recovery.checkpoint_bytes > 0
        finally:
            serial.close()
            parallel.close()

    def test_writes_after_parallel_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        _mixed_workload(path)
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=4))
        db.insert("items", {"id": 7777, "name": "fresh"})
        with db.begin() as txn:
            ref = db.query("items", Eq("id", 7777)).refs()[0]
            txn.update("items", ref, {"name": "updated"})
        assert db.query("items", Eq("id", 7777)).column("name") == ["updated"]
        db = db.restart()
        assert db.query("items", Eq("id", 7777)).count == 1
        db.close()


class TestParallelPhases:
    def test_parallel_report_phases(self, tmp_path):
        path = str(tmp_path / "db")
        _mixed_workload(path, leave_in_flight=False)
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=4))
        phases = [name for name, _ in db.last_recovery.phases]
        assert phases == [
            "checkpoint_load",
            "log_partition",
            "parallel_apply",
            "log_reopen",
            "index_rebuild",
        ]
        db.close()

    def test_span_coverage(self, tmp_path):
        """The phase spans account for >=95% of recovery wall time."""
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG)
        db = Database(path, cfg)
        db.create_table("items", ITEMS)
        db.bulk_insert(
            "items", [{"id": i, "name": f"n{i % 7}"} for i in range(3000)]
        )
        db.create_index("items", "id")
        db.crash()
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=4))
        report = db.last_recovery
        assert report.span.finished
        assert report.span.child_seconds() >= 0.95 * report.total_seconds
        db.close()


class TestParallelEdgeCases:
    def test_fresh_database_with_workers(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.LOG, replay_workers=8),
        )
        db.create_table("t", ITEMS)
        db.insert("t", {"id": 1, "name": "a"})
        db = db.restart()
        assert db.query("t").count == 1
        db.close()

    def test_more_workers_than_tables(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(path, cfg)
        db.create_table("only", ITEMS)
        db.bulk_insert("only", [{"id": i, "name": "x"} for i in range(25)])
        db.crash()
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=16))
        assert db.query("only").count == 25
        db.close()

    def test_dropped_table_stays_dropped(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(path, cfg)
        db.create_table("keep", ITEMS)
        db.create_table("gone", ITEMS)
        db.bulk_insert("gone", [{"id": i, "name": "x"} for i in range(10)])
        db.insert("keep", {"id": 1, "name": "a"})
        db.drop_table("gone")
        db.crash()
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=4))
        assert db.table_names == ["keep"]
        db.close()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_inflight_rolled_back(self, tmp_path, workers):
        path = str(tmp_path / f"db{workers}")
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(path, cfg)
        db.create_table("t", ITEMS)
        db.bulk_insert("t", [{"id": i, "name": "x"} for i in range(12)])
        txn = db.begin()
        txn.insert("t", {"id": 999, "name": "ghost"})
        db._driver._wal.sync()  # make the in-flight record durable
        db.crash()
        db = Database(
            path, make_config(DurabilityMode.LOG, replay_workers=workers)
        )
        assert db.last_recovery.txns_rolled_back == 1
        assert db.query("t").count == 12
        assert db.query("t", Eq("id", 999)).count == 0
        db.close()

    def test_indexes_rebuilt_in_parallel(self, tmp_path):
        path = str(tmp_path / "db")
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(path, cfg)
        for name in ("a", "b", "c"):
            db.create_table(name, ITEMS)
            db.bulk_insert(name, [{"id": i, "name": "x"} for i in range(20)])
            db.create_index(name, "id")
        db.crash()
        db = Database(path, make_config(DurabilityMode.LOG, replay_workers=4))
        for name in ("a", "b", "c"):
            assert "id" in db.indexes_on(name)
            assert db.query(name, Eq("id", 11)).count == 1
        db.close()
