"""Unit tests for delta/main partitions, MVCC columns, and the table."""

import numpy as np
import pytest

from repro.storage.backend import NvmBackend, VolatileBackend
from repro.storage.delta import DeltaPartition
from repro.storage.dictionary import SortedDictionary
from repro.storage.main import MainPartition
from repro.storage.mvcc import INFINITY_CID, MvccColumns, NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table, pack_rowref, unpack_rowref
from repro.storage.types import DataType


@pytest.fixture(params=["volatile", "nvm"])
def backend(request, pool):
    if request.param == "volatile":
        return VolatileBackend()
    return NvmBackend(pool)


SCHEMA = Schema.of(id=DataType.INT64, name=DataType.STRING, score=DataType.FLOAT64)


class TestRowRef:
    def test_roundtrip(self):
        for is_delta in (False, True):
            for index in (0, 1, 2**40):
                ref = pack_rowref(is_delta, index)
                assert unpack_rowref(ref) == (is_delta, index)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            pack_rowref(True, 2**63)


class TestMvccColumns:
    def test_append_uncommitted(self, backend):
        mvcc = MvccColumns.create(backend)
        row = mvcc.append_uncommitted(tid=7)
        assert row == 0
        assert mvcc.get_begin(0) == INFINITY_CID
        assert mvcc.get_end(0) == INFINITY_CID
        assert mvcc.get_tid(0) == 7

    def test_visible_mask(self, backend):
        mvcc = MvccColumns.create(backend)
        mvcc.extend_committed(
            np.array([1, 5, 2], dtype=np.uint64),
            np.array([INFINITY_CID, INFINITY_CID, 4], dtype=np.uint64),
        )
        assert list(mvcc.visible_mask(1)) == [True, False, False]
        assert list(mvcc.visible_mask(3)) == [True, False, True]
        assert list(mvcc.visible_mask(5)) == [True, True, False]

    def test_set_begin_end_tid(self, backend):
        mvcc = MvccColumns.create(backend)
        mvcc.append_uncommitted(tid=3)
        mvcc.set_begin(0, 9)
        mvcc.set_end(0, 12)
        mvcc.set_tid(0, NO_TID)
        assert mvcc.get_begin(0) == 9
        assert mvcc.get_end(0) == 12
        assert mvcc.get_tid(0) == NO_TID


class TestDeltaPartition:
    def test_insert_and_read(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        row = delta.insert_row([1, "x", 2.5], tid=9)
        assert row == 0
        assert delta.row_count == 1
        assert delta.get_value(0, 0) == 1
        assert delta.get_value(1, 0) == "x"
        assert delta.get_value(2, 0) == 2.5

    def test_null_handling(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        delta.insert_row([None, None, None], tid=1)
        assert delta.get_value(0, 0) is None
        assert delta.decode_column(1) == [None]

    def test_shared_dictionary_codes(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        delta.insert_row([7, "same", 0.0], tid=1)
        delta.insert_row([8, "same", 0.0], tid=1)
        codes = delta.column_codes(1)
        assert codes[0] == codes[1]
        assert len(delta.dictionaries[1]) == 1

    def test_crash_leftover_overwritten(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        delta.insert_row([1, "a", 1.0], tid=1)
        # Simulate a torn insert: column vectors ahead of the begin vector.
        delta.code_vectors[0].append(42)
        delta.code_vectors[1].append(42)
        delta.code_vectors[2].append(42)
        delta.mvcc.end.append(INFINITY_CID)
        delta.mvcc.tid.append(5)
        assert delta.row_count == 1  # publish never happened
        row = delta.insert_row([2, "b", 2.0], tid=2)
        assert row == 1
        assert delta.get_value(0, 1) == 2
        assert delta.get_value(1, 1) == "b"

    def test_bulk_load_visible_at_cid(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        cols = [
            np.array([0, 1], dtype=np.uint32),
            np.array([0, 0], dtype=np.uint32),
            np.array([0, 1], dtype=np.uint32),
        ]
        for v in (10, 20):
            delta.dictionaries[0].code_for_insert(v)
        delta.dictionaries[1].code_for_insert("s")
        for v in (0.5, 1.5):
            delta.dictionaries[2].code_for_insert(v)
        first = delta.bulk_load(cols, begin_cid=3)
        assert first == 0
        assert delta.row_count == 2
        assert list(delta.mvcc.visible_mask(3)) == [True, True]
        assert list(delta.mvcc.visible_mask(2)) == [False, False]

    def test_bulk_load_ragged_rejected(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        with pytest.raises(ValueError):
            delta.bulk_load(
                [np.zeros(2, np.uint32), np.zeros(3, np.uint32), np.zeros(2, np.uint32)],
                begin_cid=1,
            )

    def test_out_of_range_reads(self, backend):
        delta = DeltaPartition.create(SCHEMA, backend)
        with pytest.raises(IndexError):
            delta.get_code(0, 0)


class TestMainPartition:
    def _build(self, backend, values_by_col, begin=None, end=None):
        dictionaries = []
        code_cols = []
        for (dtype, values) in values_by_col:
            domain = sorted({v for v in values if v is not None})
            d = SortedDictionary.build(dtype, backend, domain)
            null_code = len(d)
            codes = np.array(
                [null_code if v is None else domain.index(v) for v in values],
                dtype=np.uint32,
            )
            dictionaries.append(d)
            code_cols.append(codes)
        n = len(values_by_col[0][1])
        begin = begin if begin is not None else np.ones(n, dtype=np.uint64)
        end = end if end is not None else np.full(n, INFINITY_CID, dtype=np.uint64)
        schema = Schema.of(
            **{f"c{i}": dtype for i, (dtype, _) in enumerate(values_by_col)}
        )
        return MainPartition.build(schema, backend, dictionaries, code_cols, begin, end)

    def test_build_and_decode(self, backend):
        main = self._build(
            backend,
            [
                (DataType.INT64, [5, 3, 5, None]),
                (DataType.STRING, ["b", "a", None, "b"]),
            ],
        )
        assert main.row_count == 4
        assert main.decode_column(0) == [5, 3, 5, None]
        assert main.decode_column(1) == ["b", "a", None, "b"]
        assert main.get_value(0, 1) == 3
        assert main.get_value(1, 2) is None

    def test_codes_bitpacked(self, backend):
        main = self._build(backend, [(DataType.INT64, list(range(10)))])
        col = main.columns[0]
        assert col.bits == 4  # 10 values + null code -> 4 bits
        assert col.compressed_bytes() < 10 * 8

    def test_empty_main(self, backend):
        main = MainPartition.empty(SCHEMA, backend)
        assert main.row_count == 0
        assert main.decode_column(0) == []

    def test_all_null_column(self, backend):
        main = self._build(backend, [(DataType.INT64, [None, None])])
        assert main.decode_column(0) == [None, None]

    def test_mvcc_preserved(self, backend):
        begin = np.array([2, 4], dtype=np.uint64)
        end = np.array([INFINITY_CID, 9], dtype=np.uint64)
        main = self._build(
            backend, [(DataType.INT64, [1, 2])], begin=begin, end=end
        )
        assert list(main.mvcc.begin_array()) == [2, 4]
        assert list(main.mvcc.visible_mask(4)) == [True, True]
        assert list(main.mvcc.visible_mask(9)) == [True, False]

    def test_ragged_build_rejected(self, backend):
        d = SortedDictionary.build(DataType.INT64, backend, [1])
        with pytest.raises(ValueError):
            MainPartition.build(
                Schema.of(a=DataType.INT64),
                backend,
                [d],
                [np.zeros(3, dtype=np.uint32)],
                np.ones(2, dtype=np.uint64),
                np.full(2, INFINITY_CID, dtype=np.uint64),
            )


class TestTable:
    def test_create_empty(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        assert table.row_count == 0
        assert table.main_row_count == 0
        assert table.delta_row_count == 0

    def test_insert_and_get_row(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        ref = table.insert_uncommitted([1, "a", 0.5], tid=3)
        assert unpack_rowref(ref) == (True, 0)
        assert table.get_row(ref) == [1, "a", 0.5]
        assert table.get_row_dict(ref) == {"id": 1, "name": "a", "score": 0.5}

    def test_mvcc_for_bad_ref(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        with pytest.raises(IndexError):
            table.mvcc_for(pack_rowref(True, 5))

    def test_stats(self, backend):
        table = Table.create(1, "t", SCHEMA, backend)
        table.insert_uncommitted([1, "a", 0.5], tid=3)
        stats = table.stats()
        assert stats["delta_rows"] == 1
        assert stats["main_rows"] == 0
        assert stats["name"] == "t"
