"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.storage import bitpack
from repro.storage.backend import VolatileBackend
from repro.storage.dictionary import SortedDictionary, UnsortedDictionary
from repro.storage.mvcc import INFINITY_CID, MvccColumns
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import pack_rowref, unpack_rowref
from repro.storage.types import DataType
from repro.storage.vector import VolatileVector
from repro.wal.records import (
    CommitRecord,
    CreateTableRecord,
    InsertRecord,
    InvalidateRecord,
    decode_record,
    encode_record,
)

# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------


@given(
    bits=st.integers(1, 32),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_bitpack_roundtrip(bits, data):
    count = data.draw(st.integers(0, 300))
    codes = np.asarray(
        data.draw(
            st.lists(st.integers(0, 2**bits - 1), min_size=count, max_size=count)
        ),
        dtype=np.uint32,
    )
    words = bitpack.pack(codes, bits)
    assert (bitpack.unpack(words, bits, count) == codes).all()
    assert words.size == bitpack.packed_word_count(count, bits)


# ----------------------------------------------------------------------
# Row refs
# ----------------------------------------------------------------------


@given(is_delta=st.booleans(), index=st.integers(0, 2**62))
def test_rowref_roundtrip(is_delta, index):
    assert unpack_rowref(pack_rowref(is_delta, index)) == (is_delta, index)


# ----------------------------------------------------------------------
# Vectors behave like lists
# ----------------------------------------------------------------------


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(0, 2**63 - 1)),
            st.tuples(st.just("extend"), st.lists(st.integers(0, 2**63 - 1), max_size=20)),
            st.tuples(st.just("set"), st.integers(0, 10**6)),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_volatile_vector_model(ops):
    vec = VolatileVector(np.uint64)
    model: list[int] = []
    for op, arg in ops:
        if op == "append":
            vec.append(arg)
            model.append(arg)
        elif op == "extend":
            vec.extend(np.asarray(arg, dtype=np.uint64))
            model.extend(arg)
        elif model:
            index = arg % len(model)
            vec.set(index, arg)
            model[index] = arg
    assert list(vec.to_numpy()) == model
    assert len(vec) == len(model)


# ----------------------------------------------------------------------
# Dictionaries
# ----------------------------------------------------------------------


@given(values=st.lists(st.integers(-(2**62), 2**62), max_size=60))
@settings(max_examples=60, deadline=None)
def test_unsorted_dictionary_codes_bijective(values):
    d = UnsortedDictionary.create(DataType.INT64, VolatileBackend())
    codes = [d.code_for_insert(v) for v in values]
    # Same value -> same code; decode inverts encode.
    for v, c in zip(values, codes):
        assert d.code_of(v) == c
        assert d.value_of(c) == v
    assert len(d) == len(set(values))


@given(values=st.sets(st.text(max_size=12), max_size=40))
@settings(max_examples=50, deadline=None)
def test_sorted_dictionary_order_preserving(values):
    domain = sorted(values)
    d = SortedDictionary.build(DataType.STRING, VolatileBackend(), domain)
    for i, v in enumerate(domain):
        assert d.code_of(v) == i
        assert d.value_of(i) == v
    # lower/upper bounds agree with list bisection semantics.
    for probe in list(values)[:5]:
        lb, ub = d.lower_bound(probe), d.upper_bound(probe)
        assert 0 <= lb <= ub <= len(domain)
        assert ub - lb == (1 if probe in values else 0)


# ----------------------------------------------------------------------
# MVCC visibility
# ----------------------------------------------------------------------


@given(
    rows=st.lists(
        st.tuples(st.integers(1, 50), st.one_of(st.none(), st.integers(1, 50))),
        max_size=40,
    ),
    snapshot=st.integers(0, 60),
)
@settings(max_examples=60, deadline=None)
def test_mvcc_visibility_matches_definition(rows, snapshot):
    mvcc = MvccColumns.create(VolatileBackend())
    begins = []
    ends = []
    for begin, end in rows:
        if end is not None and end < begin:
            begin, end = end, begin
        begins.append(begin)
        ends.append(INFINITY_CID if end is None else end)
    if rows:
        mvcc.extend_committed(
            np.asarray(begins, dtype=np.uint64), np.asarray(ends, dtype=np.uint64)
        )
    mask = mvcc.visible_mask(snapshot)
    for i, (begin, end) in enumerate(zip(begins, ends)):
        assert mask[i] == (begin <= snapshot < end)


# ----------------------------------------------------------------------
# Schema serialisation
# ----------------------------------------------------------------------

_identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)


@given(
    names=st.lists(_identifiers, min_size=1, max_size=10, unique=True),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_schema_roundtrip(names, data):
    dtypes = [
        data.draw(st.sampled_from(list(DataType))) for _ in names
    ]
    schema = Schema([ColumnDef(n, t) for n, t in zip(names, dtypes)])
    assert Schema.from_bytes(schema.to_bytes()) == schema


# ----------------------------------------------------------------------
# Log records
# ----------------------------------------------------------------------

_values = st.one_of(
    st.none(),
    st.integers(-(2**63), 2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)


@given(
    record=st.one_of(
        st.builds(
            InsertRecord,
            st.integers(0, 2**63),
            st.integers(0, 2**32),
            st.lists(_values, max_size=8).map(tuple),
        ),
        st.builds(
            InvalidateRecord,
            st.integers(0, 2**63),
            st.integers(0, 2**32),
            st.integers(0, 2**64 - 1),
        ),
        st.builds(CommitRecord, st.integers(0, 2**63), st.integers(0, 2**63)),
        st.builds(
            CreateTableRecord,
            st.integers(0, 2**32),
            st.text(min_size=1, max_size=20),
            st.binary(max_size=50),
        ),
    )
)
@settings(max_examples=80, deadline=None)
def test_log_record_roundtrip(record):
    frame = encode_record(record)
    decoded, end = decode_record(frame, 0)
    assert decoded == record
    assert end == len(frame)


@given(cut=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_truncated_record_never_misparses(cut):
    frame = encode_record(InsertRecord(1, 2, (7, "abc", None)))
    truncated = frame[: min(cut, len(frame) - 1)]
    assert decode_record(truncated, 0) is None
