"""Unit tests for predicates, scans, and aggregation."""

import pytest

from repro.query.aggregate import aggregate
from repro.query.predicate import (
    And,
    Between,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Ne,
    NotNull,
    Or,
)
from repro.query.scan import scan
from repro.storage.backend import VolatileBackend
from repro.storage.merge import merge_table
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType

SCHEMA = Schema.of(id=DataType.INT64, grade=DataType.STRING, score=DataType.FLOAT64)

ROWS = [
    (0, "a", 1.0),
    (1, "b", 2.0),
    (2, "c", None),
    (3, "a", 4.0),
    (4, None, 5.0),
    (5, "b", 6.0),
]


def _commit_all(table, rows, cid=1):
    for values in rows:
        ref = table.insert_uncommitted(list(values), tid=1)
        mvcc, idx = table.mvcc_for(ref)
        mvcc.set_begin(idx, cid)
        mvcc.set_tid(idx, NO_TID)


@pytest.fixture(params=["delta_only", "merged", "split"])
def table(request):
    """The same logical table in three physical layouts."""
    backend = VolatileBackend()
    table = Table.create(1, "t", SCHEMA, backend)
    if request.param == "delta_only":
        _commit_all(table, ROWS)
    elif request.param == "merged":
        _commit_all(table, ROWS)
        table.main, table.delta = merge_table(table, backend)
    else:  # half in main, half in delta
        _commit_all(table, ROWS[:3])
        table.main, table.delta = merge_table(table, backend)
        _commit_all(table, ROWS[3:])
    return table


def ids_matching(table, predicate):
    result = scan(table, snapshot_cid=10, predicate=predicate)
    return sorted(result.column("id"))


class TestPredicates:
    def test_eq(self, table):
        assert ids_matching(table, Eq("grade", "a")) == [0, 3]

    def test_eq_missing_value(self, table):
        assert ids_matching(table, Eq("grade", "zzz")) == []

    def test_ne_excludes_nulls(self, table):
        assert ids_matching(table, Ne("grade", "a")) == [1, 2, 5]

    def test_lt(self, table):
        assert ids_matching(table, Lt("score", 4.0)) == [0, 1]

    def test_le(self, table):
        assert ids_matching(table, Le("score", 4.0)) == [0, 1, 3]

    def test_gt(self, table):
        assert ids_matching(table, Gt("score", 4.0)) == [4, 5]

    def test_ge(self, table):
        assert ids_matching(table, Ge("score", 4.0)) == [3, 4, 5]

    def test_between(self, table):
        assert ids_matching(table, Between("id", 1, 3)) == [1, 2, 3]

    def test_between_empty_range(self, table):
        assert ids_matching(table, Between("id", 7, 3)) == []

    def test_in(self, table):
        assert ids_matching(table, In("grade", ["a", "c"])) == [0, 2, 3]

    def test_is_null(self, table):
        assert ids_matching(table, IsNull("score")) == [2]
        assert ids_matching(table, IsNull("grade")) == [4]

    def test_not_null(self, table):
        assert ids_matching(table, NotNull("score")) == [0, 1, 3, 4, 5]

    def test_string_range(self, table):
        assert ids_matching(table, Le("grade", "a")) == [0, 3]
        assert ids_matching(table, Gt("grade", "a")) == [1, 2, 5]

    def test_and(self, table):
        pred = And(Eq("grade", "a"), Gt("score", 2.0))
        assert ids_matching(table, pred) == [3]

    def test_or(self, table):
        pred = Or(Eq("grade", "c"), Eq("id", 5))
        assert ids_matching(table, pred) == [2, 5]

    def test_operator_sugar(self, table):
        assert ids_matching(table, Eq("grade", "a") & Gt("score", 2.0)) == [3]
        assert ids_matching(table, Eq("id", 0) | Eq("id", 5)) == [0, 5]

    def test_not(self, table):
        assert ids_matching(table, ~Eq("grade", "a")) == [1, 2, 4, 5]

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError):
            ids_matching(table, Eq("nope", 1))

    def test_empty_and_or_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()


class TestScan:
    def test_full_scan(self, table):
        result = scan(table, snapshot_cid=10)
        assert result.count == 6
        assert sorted(result.column("id")) == [0, 1, 2, 3, 4, 5]

    def test_snapshot_before_commit_sees_nothing(self, table):
        assert scan(table, snapshot_cid=0).count == 0

    def test_rows_materialisation(self, table):
        rows = scan(table, snapshot_cid=10, predicate=Eq("id", 1)).rows()
        assert rows == [{"id": 1, "grade": "b", "score": 2.0}]

    def test_columns_subset(self, table):
        result = scan(table, snapshot_cid=10, predicate=Eq("id", 2))
        assert result.columns(["grade", "score"]) == {"grade": ["c"], "score": [None]}

    def test_refs_resolve_back(self, table):
        result = scan(table, snapshot_cid=10, predicate=Eq("id", 3))
        (ref,) = result.refs()
        assert table.get_row_dict(ref)["id"] == 3

    def test_scan_needs_snapshot(self, table):
        with pytest.raises(ValueError):
            scan(table)

    def test_empty_result_rows(self, table):
        assert scan(table, snapshot_cid=10, predicate=Eq("id", 99)).rows() == []


class TestAggregate:
    def _result(self, table):
        return scan(table, snapshot_cid=10)

    def test_count_star(self, table):
        assert aggregate(self._result(table), "count") == 6

    def test_count_column_skips_nulls(self, table):
        assert aggregate(self._result(table), "count", "score") == 5

    def test_sum_min_max_avg(self, table):
        r = self._result(table)
        assert aggregate(r, "sum", "score") == 18.0
        assert aggregate(r, "min", "score") == 1.0
        assert aggregate(r, "max", "score") == 6.0
        assert aggregate(r, "avg", "score") == 3.6

    def test_group_by(self, table):
        r = self._result(table)
        groups = aggregate(r, "sum", "score", group_by="grade")
        assert groups["a"] == 5.0
        assert groups["b"] == 8.0
        assert groups["c"] is None  # only NULL scores in group c
        assert groups[None] == 5.0

    def test_group_by_count(self, table):
        counts = aggregate(self._result(table), "count", group_by="grade")
        assert counts == {"a": 2, "b": 2, "c": 1, None: 1}

    def test_aggregate_on_empty(self, table):
        r = scan(table, snapshot_cid=10, predicate=Eq("id", 99))
        assert aggregate(r, "count") == 0
        assert aggregate(r, "sum", "score") is None

    def test_unknown_aggregate_rejected(self, table):
        with pytest.raises(ValueError):
            aggregate(self._result(table), "median", "score")

    def test_sum_needs_column(self, table):
        with pytest.raises(ValueError):
            aggregate(self._result(table), "sum")
