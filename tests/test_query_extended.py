"""Tests for ordering, joins, index range scans, auto-merge, drop table."""

import time

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.query.join import anti_join, hash_join, semi_join
from repro.query.predicate import Between, Eq, Ge, Gt, Le, Lt
from repro.query.sort import order_by, top_k
from repro.storage.types import DataType

from tests.conftest import make_config

ITEMS = {"id": DataType.INT64, "name": DataType.STRING, "price": DataType.FLOAT64}


@pytest.fixture
def shop(none_db):
    none_db.create_table("items", ITEMS)
    none_db.bulk_insert(
        "items",
        [
            {"id": 1, "name": "anvil", "price": 99.0},
            {"id": 2, "name": "rope", "price": 9.5},
            {"id": 3, "name": "tent", "price": None},
            {"id": 4, "name": "mug", "price": 4.0},
        ],
    )
    none_db.create_table(
        "sales", {"item_id": DataType.INT64, "qty": DataType.INT64}
    )
    none_db.bulk_insert(
        "sales",
        [
            {"item_id": 1, "qty": 2},
            {"item_id": 2, "qty": 5},
            {"item_id": 2, "qty": 1},
            {"item_id": 9, "qty": 7},
        ],
    )
    return none_db


class TestOrderBy:
    def test_ascending_nulls_last(self, shop):
        rows = order_by(shop.query("items"), "price")
        assert [r["id"] for r in rows] == [4, 2, 1, 3]

    def test_descending_nulls_first(self, shop):
        rows = order_by(shop.query("items"), "price", descending=True)
        assert [r["id"] for r in rows] == [3, 1, 2, 4]

    def test_limit(self, shop):
        rows = order_by(shop.query("items"), "price", limit=2)
        assert [r["id"] for r in rows] == [4, 2]

    def test_multi_column(self, shop):
        shop.bulk_insert("items", [{"id": 5, "name": "rope", "price": 1.0}])
        rows = order_by(shop.query("items"), ["name", "price"])
        names = [r["name"] for r in rows]
        assert names == sorted(names)
        rope_prices = [r["price"] for r in rows if r["name"] == "rope"]
        assert rope_prices == [1.0, 9.5]

    def test_unknown_column(self, shop):
        with pytest.raises(KeyError):
            order_by(shop.query("items"), "ghost")

    def test_top_k(self, shop):
        rows = top_k(shop.query("items"), "price", 2)
        assert [r["id"] for r in rows] == [1, 2]


class TestJoins:
    def test_inner_join(self, shop):
        rows = hash_join(
            shop.query("sales"), shop.query("items"), "item_id", "id"
        )
        assert len(rows) == 3  # item 9 has no match
        rope_sales = [r for r in rows if r["name"] == "rope"]
        assert sorted(r["qty"] for r in rope_sales) == [1, 5]

    def test_join_column_subset(self, shop):
        rows = hash_join(
            shop.query("sales"),
            shop.query("items"),
            "item_id",
            "id",
            right_columns=["id", "name"],
        )
        assert set(rows[0]) == {"item_id", "qty", "id", "name"}

    def test_join_null_keys_excluded(self, shop):
        shop.bulk_insert("sales", [{"item_id": None, "qty": 3}])
        rows = hash_join(shop.query("sales"), shop.query("items"), "item_id", "id")
        assert all(r["item_id"] is not None for r in rows)

    def test_name_collision_prefixed(self, shop):
        shop.create_table("other", {"id": DataType.INT64, "name": DataType.STRING})
        shop.bulk_insert("other", [{"id": 1, "name": "different"}])
        rows = hash_join(shop.query("items"), shop.query("other"), "id")
        assert rows[0]["name"] == "anvil"
        assert rows[0]["other.name"] == "different"

    def test_semi_join(self, shop):
        rows = semi_join(shop.query("items"), shop.query("sales"), "id", "item_id")
        assert sorted(r["id"] for r in rows) == [1, 2]

    def test_anti_join(self, shop):
        rows = anti_join(shop.query("items"), shop.query("sales"), "id", "item_id")
        assert sorted(r["id"] for r in rows) == [3, 4]


class TestIndexRangeScan:
    @pytest.fixture
    def indexed(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        db.create_table("nums", {"n": DataType.INT64, "tag": DataType.STRING})
        db.bulk_insert("nums", [{"n": i, "tag": f"t{i % 3}"} for i in range(50)])
        db.merge("nums")  # half main ...
        db.bulk_insert("nums", [{"n": 50 + i, "tag": "d"} for i in range(50)])
        yield db  # ... half delta
        db.close()

    @pytest.mark.parametrize(
        "predicate,expected",
        [
            (Between("n", 45, 55), list(range(45, 56))),
            (Lt("n", 3), [0, 1, 2]),
            (Le("n", 3), [0, 1, 2, 3]),
            (Gt("n", 96), [97, 98, 99]),
            (Ge("n", 97), [97, 98, 99]),
        ],
    )
    def test_range_matches_full_scan(self, indexed, predicate, expected):
        before = sorted(indexed.query("nums", predicate).column("n"))
        assert before == expected
        indexed.create_index("nums", "n")
        after = sorted(indexed.query("nums", predicate).column("n"))
        assert after == expected

    def test_range_respects_visibility(self, indexed):
        indexed.create_index("nums", "n")
        with indexed.begin() as txn:
            ref = txn.query("nums", Eq("n", 47)).refs()[0]
            txn.delete("nums", ref)
        assert sorted(indexed.query("nums", Between("n", 45, 50)).column("n")) == [
            45, 46, 48, 49, 50,
        ]


class TestAutoMerge:
    def test_merges_when_threshold_crossed(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NVM, auto_merge_rows=20),
        )
        db.create_table("t", {"a": DataType.INT64})
        db.bulk_insert("t", [{"a": i} for i in range(25)])
        assert db._maintenance.wait_idle(timeout=10.0)
        table = db.table("t")
        assert table.main_row_count == 25
        assert table.delta_row_count == 0
        assert table.generation == 1
        db.close()

    def test_single_commits_trigger(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(DurabilityMode.NONE, auto_merge_rows=5),
        )
        db.create_table("t", {"a": DataType.INT64})
        for i in range(12):
            db.insert("t", {"a": i})
        assert db._maintenance.wait_idle(timeout=10.0)
        table = db.table("t")
        # The daemon may coalesce several threshold crossings into one
        # merge; what is guaranteed is that the delta ends up below the
        # threshold and nothing was lost.
        assert table.generation >= 1
        assert table.delta_row_count < 5
        assert db.query("t").count == 12
        db.close()

    def test_disabled_by_default(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        none_db.bulk_insert("t", [{"a": i} for i in range(100)])
        assert none_db.table("t").generation == 0

    def test_deferred_while_txn_holds_ops(self, tmp_path):
        db = Database(
            str(tmp_path / "db"),
            make_config(
                DurabilityMode.NONE,
                auto_merge_rows=2,
                merge_cutover_timeout_s=0.1,
                maintenance_interval_s=0.02,
            ),
        )
        db.create_table("t", {"a": DataType.INT64})
        holder = db.begin()
        holder.insert("t", {"a": 99})
        writer = db.begin()
        for i in range(5):
            writer.insert("t", {"a": i})
        writer.commit()
        # The holder's operations block the cutover: give the daemon a
        # few attempt windows and check the merge kept being abandoned.
        time.sleep(0.4)
        assert db.table("t").generation == 0
        holder.commit()
        deadline = time.monotonic() + 10.0
        while db.table("t").generation == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert db.table("t").generation >= 1
        assert db.query("t").count == 6
        db.close()


class TestDropTable:
    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_drop_survives_restart(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        db.create_table("keep", {"a": DataType.INT64})
        db.create_table("gone", {"a": DataType.INT64})
        db.bulk_insert("gone", [{"a": 1}])
        db.drop_table("gone")
        assert db.table_names == ["keep"]
        db = db.restart()
        assert db.table_names == ["keep"]
        db.close()

    def test_drop_unknown_table(self, none_db):
        with pytest.raises(KeyError):
            none_db.drop_table("ghost")

    def test_drop_with_active_txn_rejected(self, none_db):
        none_db.create_table("t", {"a": DataType.INT64})
        txn = none_db.begin()
        txn.insert("t", {"a": 1})
        with pytest.raises(RuntimeError):
            none_db.drop_table("t")
        txn.abort()

    def test_recreate_after_drop(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        db.create_table("t", {"a": DataType.INT64})
        db.bulk_insert("t", [{"a": 1}])
        db.drop_table("t")
        db.create_table("t", {"a": DataType.INT64, "b": DataType.STRING})
        db.bulk_insert("t", [{"a": 2, "b": "x"}])
        db = db.restart()
        assert db.query("t").rows() == [{"a": 2, "b": "x"}]
        db.close()

    def test_dropped_indexed_table_log_mode(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.LOG))
        db.create_table("t", {"a": DataType.INT64})
        db.create_index("t", "a")
        db.drop_table("t")
        db = db.restart()
        assert db.table_names == []
        db.close()
