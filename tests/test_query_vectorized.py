"""Vectorized read path vs the scalar reference implementations.

The code-space aggregate kernels and the array-backed join must return
results element-for-element equal to the row-at-a-time implementations
(`aggregate_scalar`, `hash_join_scalar`) across every dtype, NULL
placement, and physical layout (delta-only / merged / split).
"""

import pytest

import numpy as np

from repro.query.aggregate import (
    aggregate,
    aggregate_partials,
    aggregate_scalar,
    finalize_partials,
    merge_partials,
)
from repro.query.join import (
    anti_join,
    hash_join,
    hash_join_scalar,
    join,
    semi_join,
)
from repro.query.predicate import Eq, Gt, In
from repro.query.scan import scan
from repro.storage.backend import VolatileBackend
from repro.storage.merge import merge_table
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType

SCHEMA = Schema.of(
    id=DataType.INT64,
    grade=DataType.STRING,
    score=DataType.FLOAT64,
    points=DataType.INT64,
)

# Exercises: NULL group keys, all-NULL value groups, negative values,
# duplicate values across groups, strings with NULLs.
ROWS = [
    (0, "a", 1.5, 10),
    (1, "b", -2.0, None),
    (2, "c", None, None),
    (3, "a", 4.0, -7),
    (4, None, 5.25, 3),
    (5, "b", 6.0, 10),
    (6, None, None, None),
    (7, "c", None, 0),
    (8, "a", 1.5, 10),
]


def _commit_all(table, rows, cid=1):
    for values in rows:
        ref = table.insert_uncommitted(list(values), tid=1)
        mvcc, idx = table.mvcc_for(ref)
        mvcc.set_begin(idx, cid)
        mvcc.set_tid(idx, NO_TID)


def _build(layout, schema=SCHEMA, rows=ROWS, name="t", table_id=1):
    backend = VolatileBackend()
    table = Table.create(table_id, name, schema, backend)
    if layout == "delta_only":
        _commit_all(table, rows)
    elif layout == "merged":
        _commit_all(table, rows)
        table.main, table.delta = merge_table(table, backend)
    else:  # split: half in main, half in delta
        _commit_all(table, rows[: len(rows) // 2])
        table.main, table.delta = merge_table(table, backend)
        _commit_all(table, rows[len(rows) // 2 :])
    return table


@pytest.fixture(params=["delta_only", "merged", "split"])
def table(request):
    return _build(request.param)


ALL_AGGREGATES = [
    ("count", None),
    ("count", "score"),
    ("count", "grade"),
    ("count", "points"),
    ("sum", "score"),
    ("sum", "points"),
    ("avg", "score"),
    ("avg", "points"),
    ("min", "score"),
    ("min", "points"),
    ("min", "grade"),
    ("max", "score"),
    ("max", "points"),
    ("max", "grade"),
]


class TestVectorizedAggregate:
    @pytest.mark.parametrize("func,column", ALL_AGGREGATES)
    def test_ungrouped_matches_scalar(self, table, func, column):
        result = scan(table, snapshot_cid=10)
        assert aggregate(result, func, column) == aggregate_scalar(
            result, func, column
        )

    @pytest.mark.parametrize("func,column", ALL_AGGREGATES)
    @pytest.mark.parametrize("group_by", ["grade", "points", "id"])
    def test_grouped_matches_scalar(self, table, func, column, group_by):
        result = scan(table, snapshot_cid=10)
        vec = aggregate(result, func, column, group_by=group_by)
        assert vec == aggregate_scalar(result, func, column, group_by=group_by)

    def test_result_types_match_scalar(self, table):
        result = scan(table, snapshot_cid=10)
        for func, column in ALL_AGGREGATES:
            vec = aggregate(result, func, column)
            sca = aggregate_scalar(result, func, column)
            assert type(vec) is type(sca), (func, column)

    def test_empty_result(self, table):
        result = scan(table, snapshot_cid=10, predicate=Eq("id", -999))
        for func, column in ALL_AGGREGATES:
            assert aggregate(result, func, column) == aggregate_scalar(
                result, func, column
            )
            assert aggregate(
                result, func, column, group_by="grade"
            ) == aggregate_scalar(result, func, column, group_by="grade")

    def test_all_null_group_appears_with_none(self, table):
        result = scan(table, snapshot_cid=10)
        groups = aggregate(result, "min", "score", group_by="grade")
        assert groups["c"] is None  # both 'c' rows have NULL score
        sums = aggregate(result, "sum", "score", group_by="grade")
        assert sums["c"] is None

    def test_null_group_key(self, table):
        result = scan(table, snapshot_cid=10)
        groups = aggregate(result, "sum", "score", group_by="grade")
        assert groups[None] == 5.25

    def test_sum_string_raises(self, table):
        result = scan(table, snapshot_cid=10)
        with pytest.raises(TypeError):
            aggregate(result, "sum", "grade")
        with pytest.raises(TypeError):
            aggregate(result, "avg", "grade", group_by="points")

    def test_unknown_aggregate_rejected(self, table):
        result = scan(table, snapshot_cid=10)
        with pytest.raises(ValueError):
            aggregate(result, "median", "score")
        with pytest.raises(ValueError):
            aggregate(result, "sum")  # needs a column

    def test_filtered_matches_scalar(self, table):
        result = scan(table, snapshot_cid=10, predicate=Gt("id", 2))
        for group_by in (None, "grade"):
            assert aggregate(
                result, "sum", "score", group_by=group_by
            ) == aggregate_scalar(result, "sum", "score", group_by=group_by)

    def test_partials_merge_matches_whole(self, table):
        """Partials of two disjoint scans merge to the full answer."""
        low = scan(table, snapshot_cid=10, predicate=In("id", range(0, 5)))
        high = scan(table, snapshot_cid=10, predicate=In("id", range(5, 20)))
        whole = scan(table, snapshot_cid=10)
        for func, column in ALL_AGGREGATES:
            for group_by in (None, "grade"):
                merged = merge_partials(
                    func,
                    [
                        aggregate_partials(low, func, column, group_by),
                        aggregate_partials(high, func, column, group_by),
                    ],
                )
                assert finalize_partials(
                    func, merged, group_by is not None
                ) == aggregate_scalar(whole, func, column, group_by), (
                    func,
                    column,
                    group_by,
                )


class TestColumnArray:
    def test_matches_column(self, table):
        result = scan(table, snapshot_cid=10)
        for name in SCHEMA.names:
            values, null_mask = result.column_array(name)
            expected = result.column(name)
            assert null_mask.tolist() == [v is None for v in expected]
            for got, want, is_null in zip(
                values.tolist(), expected, null_mask.tolist()
            ):
                if not is_null:
                    assert got == want

    def test_numeric_dtypes(self, table):
        result = scan(table, snapshot_cid=10)
        values, _ = result.column_array("points")
        assert values.dtype == np.int64
        values, _ = result.column_array("score")
        assert values.dtype == np.float64
        values, null_mask = result.column_array("grade")
        assert values.dtype == object
        # Object arrays carry None directly at NULL slots.
        assert all(
            v is None for v, n in zip(values.tolist(), null_mask.tolist()) if n
        )


RIGHT_SCHEMA = Schema.of(
    id=DataType.INT64, grade=DataType.STRING, label=DataType.STRING
)

RIGHT_ROWS = [
    (0, "a", "zero"),
    (2, "b", "two"),
    (2, "x", "dup"),
    (4, None, "four"),
    (9, "c", "nine"),
    (None, "a", "null-key"),
]


def _canon(rows):
    return sorted((sorted(r.items()) for r in rows), key=repr)


@pytest.fixture(params=["delta_only", "merged", "split"])
def right_table(request):
    return _build(
        request.param, RIGHT_SCHEMA, RIGHT_ROWS, name="r", table_id=2
    )


class TestVectorizedJoin:
    def test_inner_matches_scalar(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        assert _canon(hash_join(left, right, "id")) == _canon(
            hash_join_scalar(left, right, "id")
        )
        assert _canon(hash_join(right, left, "id")) == _canon(
            hash_join_scalar(right, left, "id")
        )

    def test_name_collision_prefixed(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        rows = hash_join(left, right, "id")
        # id 0: left grade 'a' == right grade 'a' -> no prefix;
        # id 2: left grade 'c' != right grades -> prefixed.
        by_id = {}
        for row in rows:
            by_id.setdefault(row["id"], []).append(row)
        assert all("r.grade" not in row for row in by_id[0])
        assert all(row["r.grade"] in ("b", "x") for row in by_id[2])
        assert _canon(rows) == _canon(hash_join_scalar(left, right, "id"))

    def test_column_selection(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        picked = hash_join(
            left, right, "id",
            left_columns=["id", "score"], right_columns=["id", "label"],
        )
        assert _canon(picked) == _canon(hash_join_scalar(
            left, right, "id",
            left_columns=["id", "score"], right_columns=["id", "label"],
        ))

    def test_cross_type_keys(self, table, right_table):
        """int64 keys joining a float64 column (1 == 1.0)."""
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        assert _canon(hash_join(left, right, "points", "id")) == _canon(
            hash_join_scalar(left, right, "points", "id")
        )

    def test_late_materialization(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        lazy = join(left, right, "id")
        assert len(lazy) == len(hash_join_scalar(left, right, "id"))
        labels = right.gather_column("label", lazy.right_rows)
        assert len(labels) == len(lazy)
        assert _canon(lazy.rows()) == _canon(
            hash_join_scalar(left, right, "id")
        )

    def test_semi_and_anti_match_reference(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        right = scan(right_table, snapshot_cid=10)
        keys = {v for v in right.column("id") if v is not None}
        assert _canon(semi_join(left, right, "id")) == _canon(
            [r for r in left.rows() if r["id"] in keys]
        )
        assert _canon(anti_join(left, right, "id")) == _canon(
            [r for r in left.rows() if r["id"] is not None and r["id"] not in keys]
        )

    def test_semi_join_ignores_invisible_dictionary_values(self, right_table):
        """A value in the right dictionary but filtered out of the scan
        must not count as a match."""
        left_table = _build("delta_only")
        left = scan(left_table, snapshot_cid=10)
        right = scan(
            right_table, snapshot_cid=10, predicate=Eq("label", "nine")
        )
        # Only id 9 is visible on the right; no left id matches it.
        assert semi_join(left, right, "id") == []
        anti = anti_join(left, right, "id")
        assert sorted(r["id"] for r in anti) == list(range(9))

    def test_empty_sides(self, table, right_table):
        left = scan(table, snapshot_cid=10)
        empty = scan(right_table, snapshot_cid=10, predicate=Eq("id", -1))
        assert hash_join(left, empty, "id") == []
        assert hash_join(empty, left, "id") == []
        assert semi_join(left, empty, "id") == []
        assert len(anti_join(left, empty, "id")) == len(
            [r for r in left.rows() if r["id"] is not None]
        )


class TestPredicateSatellites:
    def test_in_eval_main_matches_delta_semantics(self):
        table = _build("merged")
        values = [0, 3, 4, 99]
        result = scan(table, snapshot_cid=10, predicate=In("id", values))
        assert sorted(result.column("id")) == [0, 3, 4]

    def test_in_eval_main_empty_and_single(self):
        table = _build("merged")
        assert scan(table, snapshot_cid=10, predicate=In("id", [99])).count == 0
        single = scan(table, snapshot_cid=10, predicate=In("id", [5]))
        assert single.column("id") == [5]

    def test_delta_truth_cache_tracks_dictionary_growth(self):
        table = _build("delta_only")
        predicate = Eq("grade", "z")
        assert scan(table, snapshot_cid=10, predicate=predicate).count == 0
        # Grow the delta dictionary with the now-matching value; the
        # cached truth table must be extended, not reused stale.
        _commit_all(table, [(100, "z", 1.0, 1)], cid=2)
        result = scan(table, snapshot_cid=10, predicate=predicate)
        assert result.column("id") == [100]
        # And repeated evaluation (cache hit) stays correct.
        again = scan(table, snapshot_cid=10, predicate=predicate)
        assert again.column("id") == [100]

    def test_delta_truth_cache_survives_merge(self):
        backend = VolatileBackend()
        table = Table.create(7, "m", SCHEMA, backend)
        _commit_all(table, ROWS)
        predicate = In("grade", ["a", "c"])
        before = sorted(
            scan(table, snapshot_cid=10, predicate=predicate).column("id")
        )
        table.main, table.delta = merge_table(table, backend)
        # Fresh delta dictionary (new uid): the cache keyed on the old
        # dictionary must not leak into the new one.
        after = sorted(
            scan(table, snapshot_cid=10, predicate=predicate).column("id")
        )
        assert before == after == [0, 2, 3, 7, 8]


class TestShardedAggregate:
    @pytest.fixture
    def engine(self, tmp_path):
        from repro.core.config import DurabilityMode, EngineConfig
        from repro.core.sharding import ShardedEngine

        engine = ShardedEngine(
            str(tmp_path / "shards"),
            EngineConfig(mode=DurabilityMode.NONE, shards=4),
        )
        engine.create_table(
            "t",
            {
                "id": DataType.INT64,
                "grade": DataType.STRING,
                "score": DataType.FLOAT64,
                "points": DataType.INT64,
            },
        )
        engine.bulk_insert(
            "t",
            [
                {"id": i, "grade": g, "score": s, "points": p}
                for i, g, s, p in ROWS
            ]
            + [
                {"id": 100 + i, "grade": "d", "score": float(i), "points": i}
                for i in range(20)
            ],
        )
        yield engine
        engine.close()

    @pytest.mark.parametrize("func,column", ALL_AGGREGATES)
    @pytest.mark.parametrize("group_by", [None, "grade"])
    def test_partial_merge_matches_row_shipping(
        self, engine, func, column, group_by
    ):
        shipped = aggregate_scalar(
            engine.query("t"), func, column, group_by=group_by
        )
        assert engine.aggregate("t", func, column, group_by=group_by) == shipped
        # The ShardedResult entry point takes the same partial path.
        assert aggregate(
            engine.query("t"), func, column, group_by=group_by
        ) == shipped
