"""WAL shipping, followers, ack modes, and failover promotion."""

from __future__ import annotations

import pytest

from repro.core.config import DurabilityMode, EngineConfig
from repro.core.database import Database
from repro.obs import MetricsRegistry, set_registry
from repro.query.predicate import Eq
from repro.replication import AckMode, Follower, WalShipper
from repro.storage.types import DataType

SCHEMA = {"id": DataType.INT64, "v": DataType.STRING}


@pytest.fixture
def registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


def _log_db(tmp_path, **overrides) -> Database:
    defaults = dict(mode=DurabilityMode.LOG, group_commit_size=1)
    defaults.update(overrides)
    return Database(str(tmp_path / "primary"), EngineConfig(**defaults))


def _rows(db_or_follower) -> dict:
    result = db_or_follower.query("t")
    return dict(zip(result.column("id"), result.column("v")))


def _replicate(tmp_path, db, ack_mode, followers=1):
    shipper = WalShipper(db, ack_mode=ack_mode, ack_timeout_s=20.0)
    replicas = [
        shipper.add_follower(
            Follower(str(tmp_path / f"replica{i}"), name=f"r{i}")
        )
        for i in range(followers)
    ]
    shipper.start()
    return shipper, replicas


class TestAckModes:
    def test_required_acks_ladder(self):
        assert AckMode.ASYNC.required_acks(3) == 0
        assert AckMode.SEMI_SYNC.required_acks(0) == 0
        assert AckMode.SEMI_SYNC.required_acks(3) == 1
        assert AckMode.QUORUM.required_acks(1) == 1
        assert AckMode.QUORUM.required_acks(2) == 2
        assert AckMode.QUORUM.required_acks(3) == 2
        assert AckMode.QUORUM.required_acks(5) == 3

    def test_string_coercion(self, tmp_path):
        db = _log_db(tmp_path)
        try:
            shipper = WalShipper(db, ack_mode="semi_sync")
            assert shipper.ack_mode is AckMode.SEMI_SYNC
            shipper.stop()
        finally:
            db.close()


class TestSemiSync:
    def test_acked_commits_survive_primary_loss(self, tmp_path):
        """The semi-sync contract: once an autocommit insert returns,
        the follower already applied it — killing the primary without
        any catch-up sync must lose nothing acknowledged."""
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        expected = {}
        for i in range(50):
            db.insert("t", {"id": i, "v": f"v{i}"})
            expected[i] = f"v{i}"
        shipper.stop()  # no sync_followers: acked must already be there
        db.crash(seed=1)
        promoted = replica.promote()
        try:
            assert _rows(promoted) == expected
        finally:
            promoted.close()
            replica.close()

    def test_update_delete_merge_replicate(self, tmp_path, registry):
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        for i in range(20):
            db.insert("t", {"id": i, "v": f"v{i}"})
        txn = db.begin()  # update + delete in one commit
        (ref3,) = txn.query("t", Eq("id", 3)).refs()
        txn.update("t", ref3, {"v": "patched"})
        (ref7,) = txn.query("t", Eq("id", 7)).refs()
        txn.delete("t", ref7)
        txn.commit()
        db.merge("t")
        db.bulk_insert("t", [{"id": 100 + i, "v": f"b{i}"} for i in range(5)])
        assert shipper.sync_followers(timeout_s=10.0)
        expected = _rows(db)
        assert expected[3] == "patched"
        assert 7 not in expected
        assert len(expected) == 24
        assert _rows(replica) == expected
        shipper.close()
        db.close()


class TestAsync:
    def test_follower_never_ahead_of_durable_frontier(self, tmp_path):
        """Async shipping from a WAL primary trails the fsync frontier:
        with fully asynchronous local commits nothing is durable, so
        nothing ships — until an explicit sync releases the backlog."""
        db = _log_db(tmp_path, group_commit_size=0)
        db.create_table("t", SCHEMA)
        # DDL syncs, so the follower can bootstrap and see the table.
        shipper, (replica,) = _replicate(tmp_path, db, AckMode.ASYNC)
        for i in range(20):
            db.insert("t", {"id": i, "v": f"v{i}"})
        wal = db._driver.wal
        assert wal.commits_acked > wal.commits_durable  # the async gap
        durable_before = wal.durable_lsn
        assert not replica.wait_for(wal.lsn, timeout_s=0.2)
        assert replica.applied_lsn <= durable_before
        wal.sync()
        assert shipper.sync_followers(timeout_s=10.0)
        assert _rows(replica) == {i: f"v{i}" for i in range(20)}
        shipper.close()
        db.close()

    def test_acked_durable_gap_across_crash_and_recovery(self, tmp_path):
        """The async contract end to end: acked-but-not-durable commits
        may die with the primary, and the follower — held behind the
        durable frontier — agrees byte-for-byte with what the primary
        itself recovers."""
        db = _log_db(tmp_path, group_commit_size=0)
        db.create_table("t", SCHEMA)
        for i in range(10):
            db.insert("t", {"id": i, "v": f"v{i}"})
        db._driver.wal.sync()  # first ten rows durable
        shipper, (replica,) = _replicate(tmp_path, db, AckMode.ASYNC)
        for i in range(10, 25):
            db.insert("t", {"id": i, "v": f"v{i}"})  # acked, not durable
        # Catch up to the durable frontier — the shipper withholds the
        # acked-but-unsynced suffix from the follower by design.
        assert replica.wait_for(db._driver.wal.durable_lsn, timeout_s=10.0)
        shipper.stop()
        db.crash(seed=2)
        recovered = Database(
            str(tmp_path / "primary"),
            EngineConfig(mode=DurabilityMode.LOG, group_commit_size=0),
        )
        survivors = _rows(recovered)
        assert survivors == {i: f"v{i}" for i in range(10)}  # gap lost
        promoted = replica.promote()
        try:
            assert _rows(promoted) == survivors  # replica agrees
        finally:
            promoted.close()
            replica.close()
            recovered.close()


class TestQuorum:
    def test_majority_of_two_means_both(self, tmp_path):
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        shipper, replicas = _replicate(
            tmp_path, db, AckMode.QUORUM, followers=2
        )
        for i in range(15):
            db.insert("t", {"id": i, "v": f"v{i}"})
        shipper.stop()
        db.crash(seed=1)
        expected = {i: f"v{i}" for i in range(15)}
        # Both followers hold every acked commit — either can take over.
        for replica in replicas:
            promoted = replica.promote()
            try:
                assert _rows(promoted) == expected
            finally:
                promoted.close()
                replica.close()


class TestBootstrap:
    def test_log_primary_with_checkpoint_resumes_mid_log(self, tmp_path):
        """A checkpointed primary ships only the post-checkpoint suffix;
        the follower rebuilds the prefix from the checkpoint copy."""
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        for i in range(10):
            db.insert("t", {"id": i, "v": f"v{i}"})
        db.checkpoint()
        for i in range(10, 14):
            db.insert("t", {"id": i, "v": f"v{i}"})
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        assert shipper.start_lsn > 0
        db.insert("t", {"id": 99, "v": "tail"})
        assert shipper.sync_followers(timeout_s=10.0)
        expected = {i: f"v{i}" for i in range(14)}
        expected[99] = "tail"
        assert _rows(replica) == expected
        shipper.close()
        db.close()

    def test_nvm_primary_ships_through_ship_log(self, tmp_path):
        """An NVM primary has no WAL: the shipper snapshots the pool
        into a ship checkpoint and mirrors every later operation —
        DML, DDL, bulk loads, merges — into a transport log."""
        db = Database(
            str(tmp_path / "primary"),
            EngineConfig(mode=DurabilityMode.NVM),
        )
        db.create_table("t", SCHEMA)
        for i in range(8):
            db.insert("t", {"id": i, "v": f"v{i}"})
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        assert shipper.start_lsn == 0
        db.insert("t", {"id": 8, "v": "v8"})
        db.create_table("u", SCHEMA)  # post-attach DDL must replicate
        db.insert("u", {"id": 1, "v": "other"})
        db.merge("t")
        db.bulk_insert("t", [{"id": 20 + i, "v": f"b{i}"} for i in range(4)])
        assert shipper.sync_followers(timeout_s=10.0)
        assert _rows(replica) == _rows(db)
        assert replica.query("u").count == 1
        assert sorted(replica.table_names()) == ["t", "u"]
        shipper.close()
        db.close()

    def test_quiescent_attach_enforced(self, tmp_path):
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        txn = db.begin()
        txn.insert("t", {"id": 1, "v": "in-flight"})
        with pytest.raises(RuntimeError, match="quiescent"):
            WalShipper(db, ack_mode=AckMode.SEMI_SYNC)
        txn.commit()
        db.close()

    def test_none_mode_primary_rejected(self, tmp_path):
        db = Database(
            str(tmp_path / "primary"),
            EngineConfig(mode=DurabilityMode.NONE),
        )
        with pytest.raises(RuntimeError, match="cannot ship"):
            WalShipper(db)
        db.close()


class TestPromotion:
    def test_promoted_replica_is_writable_and_restartable(self, tmp_path):
        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        for i in range(12):
            db.insert("t", {"id": i, "v": f"v{i}"})
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        db.insert("t", {"id": 12, "v": "v12"})
        shipper.stop()
        db.crash(seed=1)
        promoted = replica.promote(
            EngineConfig(mode=DurabilityMode.LOG, group_commit_size=1)
        )
        promoted.insert("t", {"id": 1000, "v": "post-failover"})
        promoted = promoted.restart()
        try:
            rows = _rows(promoted)
            assert rows[1000] == "post-failover"
            assert len(rows) == 14
        finally:
            promoted.close()
            replica.close()


class TestObservability:
    def test_replication_metrics_emitted(self, tmp_path, registry):
        from repro.obs import get_registry

        db = _log_db(tmp_path)
        db.create_table("t", SCHEMA)
        shipper, (replica,) = _replicate(
            tmp_path, db, AckMode.SEMI_SYNC
        )
        for i in range(10):
            db.insert("t", {"id": i, "v": f"v{i}"})
        assert shipper.sync_followers(timeout_s=10.0)
        reg = get_registry()
        assert reg.counter("replication_records_shipped_total").value > 0
        assert reg.counter("follower_applies_total", follower="r0").value > 0
        assert (
            reg.counter("follower_commits_applied_total", follower="r0").value
            >= 10
        )
        assert reg.counter("replication_ack_timeouts_total").value == 0
        assert reg.gauge("replication_lag_bytes").value == 0.0
        status = shipper.status()
        assert status["ack_mode"] == "semi_sync"
        assert status["followers"]["r0"]["lag_bytes"] == 0
        shipper.close()
        db.close()
