"""Restart and recovery behaviour per durability mode."""

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.nvm.pool import PMemMode
from repro.query.predicate import Eq
from repro.recovery.validator import validate_database
from repro.storage.types import DataType

from tests.conftest import make_config

ITEMS = {"id": DataType.INT64, "name": DataType.STRING}


def _fill(db, n=30):
    db.create_table("items", ITEMS)
    db.bulk_insert("items", [{"id": i, "name": f"n{i % 4}"} for i in range(n)])


class TestCleanRestart:
    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_data_survives(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        _fill(db)
        db = db.restart()
        assert db.query("items").count == 30
        assert db.query("items", Eq("id", 7)).count == 1
        db.close()

    def test_none_mode_loses_data(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        _fill(db)
        db = db.restart()
        assert db.table_names == []
        db.close()

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_cids_continue_after_restart(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        _fill(db)
        before = db.last_cid
        db = db.restart()
        assert db.last_cid == before
        db.insert("items", {"id": 99, "name": "after"})
        assert db.last_cid == before + 1
        db.close()

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_write_after_restart(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        _fill(db, 5)
        db = db.restart()
        db.insert("items", {"id": 100, "name": "fresh"})
        with db.begin() as txn:
            ref = db.query("items", Eq("id", 2)).refs()[0]
            txn.update("items", ref, {"name": "touched"})
        assert db.query("items", Eq("id", 2)).column("name") == ["touched"]
        assert db.query("items").count == 6
        db.close()

    def test_merge_survives_restart_nvm(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        _fill(db, 40)
        db.merge("items")
        db.insert("items", {"id": 100, "name": "post-merge"})
        db = db.restart()
        table = db.table("items")
        assert table.main_row_count == 40
        assert table.delta_row_count == 1
        assert table.generation == 1
        db.close()

    def test_indexes_survive_restart(self, tmp_path):
        for mode in (DurabilityMode.NVM, DurabilityMode.LOG):
            db = Database(str(tmp_path / mode.value), make_config(mode))
            _fill(db)
            db.create_index("items", "id")
            db = db.restart()
            assert "id" in db.indexes_on("items")
            assert db.query("items", Eq("id", 3)).count == 1
            db.close()


class TestCrashRecovery:
    def test_nvm_committed_survive_crash(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
        db = Database(str(tmp_path / "db"), cfg)
        _fill(db)
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("items").count == 30
        assert not db.last_recovery.txns_rolled_back
        db.close()

    def test_nvm_inflight_rolled_back(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
        db = Database(str(tmp_path / "db"), cfg)
        _fill(db, 10)
        txn = db.begin()
        txn.insert("items", {"id": 999, "name": "ghost"})
        ref = db.query("items", Eq("id", 3)).refs()[0]
        txn.delete("items", ref)
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.last_recovery.txns_rolled_back == 1
        assert db.query("items").count == 10  # delete rolled back too
        assert db.query("items", Eq("id", 999)).count == 0
        assert db.query("items", Eq("id", 3)).count == 1
        # The previously locked row is writable again.
        with db.begin() as txn:
            txn.delete("items", db.query("items", Eq("id", 3)).refs()[0])
        assert db.query("items").count == 9
        db.close()

    def test_log_committed_survive_crash(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG, group_commit_size=1)
        db = Database(str(tmp_path / "db"), cfg)
        _fill(db)
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("items").count == 30
        db.close()

    def test_log_group_commit_may_lose_tail_but_stays_consistent(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG, group_commit_size=10)
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("items", ITEMS)
        for i in range(25):
            db.insert("items", {"id": i, "name": "x"})
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        count = db.query("items").count
        # Whole groups of 10 are durable; the open group may be lost.
        assert count == 20
        problems = validate_database(db._tables_by_id.values(), db.last_cid)
        assert not problems
        db.close()

    def test_checkpoint_bounds_replay(self, tmp_path):
        cfg = make_config(DurabilityMode.LOG)
        db = Database(str(tmp_path / "db"), cfg)
        _fill(db, 20)
        db.checkpoint()
        db.insert("items", {"id": 777, "name": "tail"})
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        # Replay only covers records after the checkpoint LSN.
        assert db.last_recovery.log_records_replayed <= 3
        assert db.last_recovery.checkpoint_bytes > 0
        assert db.query("items").count == 21
        db.close()

    def test_double_crash_recovery_idempotent(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, pmem_mode=PMemMode.STRICT)
        db = Database(str(tmp_path / "db"), cfg)
        _fill(db, 8)
        txn = db.begin()
        txn.insert("items", {"id": 555, "name": "ghost"})
        db.crash()
        db = Database(str(tmp_path / "db"), cfg)
        db.crash()  # crash again right after recovery
        db = Database(str(tmp_path / "db"), cfg)
        assert db.query("items").count == 8
        problems = validate_database(db._tables_by_id.values(), db.last_cid)
        assert not problems
        db.close()

    def test_recovery_report_phases(self, tmp_path):
        for mode, expected in [
            (
                DurabilityMode.NVM,
                {"pool_open", "catalog_attach", "txn_fixup", "finalize"},
            ),
            (
                DurabilityMode.LOG,
                {"checkpoint_load", "log_replay", "log_reopen", "index_rebuild"},
            ),
        ]:
            db = Database(str(tmp_path / mode.value), make_config(mode))
            _fill(db, 5)
            db = db.restart()
            phases = {name for name, _ in db.last_recovery.phases}
            assert phases == expected, mode
            # Every phase is a real measured span under the report root.
            assert db.last_recovery.span.finished
            assert db.last_recovery.total_seconds >= db.last_recovery.span.child_seconds()
            db.close()


class TestPersistentStructuresReattach:
    def test_persistent_lookups_survive_restart(self, tmp_path):
        """Regression: an *empty* PHashMap is falsy (it has __len__), so a
        truthiness check once dropped persistent lookups from the delta
        descriptor and every restart silently fell back to the O(delta)
        volatile rebuild."""
        cfg = make_config(
            DurabilityMode.NVM,
            persistent_dict_index=True,
            persistent_delta_index=True,
        )
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("t", ITEMS)
        db.create_index("t", "id")
        db.bulk_insert("t", [{"id": i, "name": "x"} for i in range(20)])
        db = db.restart()
        delta = db.table("t").delta
        assert all(d.persistent_lookup is not None for d in delta.dictionaries)
        index = db.indexes_on("t")["id"]
        assert not index.delta_index.needs_rebuild_after_restart
        # The fast path answers without building the volatile cache.
        assert delta.dictionaries[0].code_of(7) is not None
        assert delta.dictionaries[0]._lookup is None
        db.close()

    def test_empty_table_persistent_lookup_roundtrip(self, tmp_path):
        cfg = make_config(DurabilityMode.NVM, persistent_dict_index=True)
        db = Database(str(tmp_path / "db"), cfg)
        db.create_table("t", ITEMS)
        db = db.restart()  # reattach with zero entries
        delta = db.table("t").delta
        assert all(d.persistent_lookup is not None for d in delta.dictionaries)
        db.insert("t", {"id": 1, "name": "a"})
        db = db.restart()
        assert db.table("t").delta.dictionaries[0].code_of(1) == 0
        db.close()
