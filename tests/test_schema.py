"""Unit tests for schemas and data types."""

import pytest

from repro.storage.schema import ColumnDef, Schema
from repro.storage.types import DataType


class TestDataType:
    def test_int_validation(self):
        assert DataType.INT64.validate(5) == 5
        assert DataType.INT64.validate(None) is None
        with pytest.raises(TypeError):
            DataType.INT64.validate("5")
        with pytest.raises(TypeError):
            DataType.INT64.validate(True)  # bools are not ints here

    def test_float_validation_coerces_ints(self):
        assert DataType.FLOAT64.validate(5) == 5.0
        assert isinstance(DataType.FLOAT64.validate(5), float)
        with pytest.raises(TypeError):
            DataType.FLOAT64.validate("x")

    def test_string_validation(self):
        assert DataType.STRING.validate("abc") == "abc"
        with pytest.raises(TypeError):
            DataType.STRING.validate(1)

    def test_python_type(self):
        assert DataType.INT64.python_type is int
        assert DataType.STRING.python_type is str


class TestColumnDef:
    def test_invalid_names_rejected(self):
        for bad in ("", "1abc", "a b", "a-b"):
            with pytest.raises(ValueError):
                ColumnDef(bad, DataType.INT64)

    def test_valid_name(self):
        col = ColumnDef("order_id", DataType.INT64)
        assert col.name == "order_id"


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.STRING)
        assert schema.names == ["a", "b"]
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([ColumnDef("x", DataType.INT64), ColumnDef("x", DataType.STRING)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_column_index(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.STRING)
        assert schema.column_index("b") == 1
        with pytest.raises(KeyError):
            schema.column_index("zz")

    def test_validate_row_fills_nulls(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.STRING)
        assert schema.validate_row({"a": 1}) == [1, None]

    def test_validate_row_rejects_unknown(self):
        schema = Schema.of(a=DataType.INT64)
        with pytest.raises(KeyError):
            schema.validate_row({"a": 1, "zz": 2})

    def test_validate_row_type_checks(self):
        schema = Schema.of(a=DataType.INT64)
        with pytest.raises(TypeError):
            schema.validate_row({"a": "not an int"})

    def test_serialisation_roundtrip(self):
        schema = Schema.of(
            id=DataType.INT64, name=DataType.STRING, score=DataType.FLOAT64
        )
        assert Schema.from_bytes(schema.to_bytes()) == schema

    def test_serialisation_unicode_names(self):
        schema = Schema([ColumnDef("naïve_col", DataType.STRING)])
        # Identifiers may be unicode in Python.
        assert Schema.from_bytes(schema.to_bytes()) == schema
