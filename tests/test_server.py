"""In-process server tests: sessions, ops, pipelining, admission.

These run a real asyncio server (:class:`ServerThread`) against real
sockets, but inside the test process — crash/restart scenarios with a
genuine process boundary live in ``tests/test_tenants.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.query.predicate import Between, Eq, Gt
from repro.server.client import Rejected, ReproClient, ServerError
from repro.server.protocol import Op, PROTOCOL_VERSION, Status
from repro.server.server import ServerConfig, ServerThread

HOST = "127.0.0.1"
SCHEMA = [("id", "int64"), ("name", "string"), ("qty", "int64")]


@pytest.fixture()
def served(tmp_path):
    with ServerThread(str(tmp_path / "data")) as thread:
        yield thread


@pytest.fixture()
def client(served):
    with ReproClient(HOST, served.port) as c:
        yield c


def seed_tenant(client, tenant="acme", rows=10):
    client.create_tenant(tenant)
    view = client.for_tenant(tenant)
    view.create_table("items", SCHEMA)
    view.insert_many(
        "items",
        [{"id": i, "name": f"n{i % 3}", "qty": i * 2} for i in range(rows)],
    )
    return view


# ----------------------------------------------------------------------
# Session protocol
# ----------------------------------------------------------------------


def test_ping_and_hello(served):
    with ReproClient(HOST, served.port) as client:
        assert client.ping()
        assert client.server_version == PROTOCOL_VERSION


def test_request_before_hello_rejected(served):
    with ReproClient(HOST, served.port, hello=False) as client:
        with pytest.raises(ServerError) as err:
            client.call(Op.PING, {})
        assert err.value.status is Status.NEED_HELLO


def test_wrong_version_hello_rejected(served):
    with ReproClient(HOST, served.port, hello=False) as client:
        with pytest.raises(ServerError) as err:
            client.call(Op.HELLO, {"version": PROTOCOL_VERSION + 1})
        assert err.value.status is Status.WRONG_VERSION


def test_garbage_frame_drops_connection(served):
    with ReproClient(HOST, served.port) as client:
        client._sock.sendall(b"\xff" * 64)
        with pytest.raises((ConnectionError, OSError)):
            client.call(Op.PING, {})


def test_data_op_without_tenant_rejected(client):
    with pytest.raises(ServerError) as err:
        client.call(Op.TABLES, {})
    assert err.value.status is Status.BAD_REQUEST


def test_unknown_tenant_rejected(client):
    with pytest.raises(ServerError) as err:
        client.tables(tenant="nope")
    assert err.value.status is Status.NO_SUCH_TENANT


# ----------------------------------------------------------------------
# Data plane
# ----------------------------------------------------------------------


def test_ddl_insert_query_aggregate(client):
    view = seed_tenant(client)
    assert view.tables() == ["items"]
    assert view.query("items", Eq("id", 3)) == [{"id": 3, "name": "n0", "qty": 6}]
    assert view.query("items", Between("qty", 0, 6), columns=["id"]) == [
        {"id": 0},
        {"id": 1},
        {"id": 2},
        {"id": 3},
    ]
    full = view.query_full("items", Gt("id", 4), limit=2)
    assert full["count"] == 5
    assert len(full["rows"]) == 2
    assert view.aggregate("items", "count") == 10
    assert view.aggregate("items", "sum", column="qty") == sum(i * 2 for i in range(10))
    groups = view.aggregate("items", "count", group_by="name")
    assert groups == {"n0": 4, "n1": 3, "n2": 3}


def test_insert_returns_position(client):
    view = seed_tenant(client, rows=0)
    ref = view.insert("items", {"id": 1, "name": "a", "qty": 2})
    assert ref == {"row": 0, "delta": True}


def test_index_and_stats(client):
    view = seed_tenant(client)
    view.create_index("items", "id")
    stats = view.stats()
    table = stats["tables"]["items"]
    assert table["main_rows"] + table["delta_rows"] == 10


def test_drop_table(client):
    view = seed_tenant(client)
    view.drop_table("items")
    assert view.tables() == []
    with pytest.raises(ServerError) as err:
        view.query("items")
    assert err.value.status is Status.NO_SUCH_TABLE


def test_sharded_tenant_over_the_wire(client):
    client.create_tenant("wide", shards=2)
    view = client.for_tenant("wide")
    view.create_table("t", SCHEMA, partition_key="id")
    view.insert_many("t", [{"id": i, "name": "x", "qty": i} for i in range(20)])
    assert view.aggregate("t", "count") == 20
    assert view.aggregate("t", "sum", column="qty") == sum(range(20))


def test_malformed_body_is_bad_request(client):
    client.create_tenant("acme")
    with pytest.raises(ServerError) as err:
        client.call(Op.QUERY, "not-a-dict", tenant="acme")
    assert err.value.status is Status.BAD_REQUEST
    with pytest.raises(ServerError) as err:
        client.call(
            Op.QUERY, {"table": "t", "predicate": ["bogus", "a", 1]}, tenant="acme"
        )
    assert err.value.status is Status.BAD_REQUEST


# ----------------------------------------------------------------------
# Pipelining and concurrency
# ----------------------------------------------------------------------


def test_pipeline_responses_in_request_order(client):
    view = seed_tenant(client)
    requests = []
    for i in range(24):
        if i % 3 == 0:
            requests.append((Op.QUERY, {"table": "items", "predicate": ["eq", "id", i % 10]}))
        else:
            requests.append(
                (Op.INSERT, {"table": "items", "row": {"id": 100 + i, "name": "p", "qty": i}})
            )
    responses = view.pipeline(requests)
    assert len(responses) == 24
    assert all(r.ok for r in responses)
    # Inserted rows all landed despite out-of-order completion.
    assert view.aggregate("items", "count") == 10 + sum(1 for i in range(24) if i % 3)


def test_pipeline_carries_per_request_errors(client):
    seed_tenant(client)
    responses = client.pipeline(
        [
            (Op.PING, {}),
            (Op.QUERY, {"table": "missing"}),
            (Op.PING, {}),
        ],
        tenant="acme",
    )
    assert [r.status for r in responses] == [
        Status.OK,
        Status.NO_SUCH_TABLE,
        Status.OK,
    ]


def test_concurrent_clients_one_tenant(served):
    with ReproClient(HOST, served.port) as admin:
        seed_tenant(admin, rows=0)
    workers, per = 6, 40
    errors = []

    def run(slot):
        try:
            with ReproClient(HOST, served.port, tenant="acme") as c:
                for i in range(per):
                    c.insert(
                        "items",
                        {"id": slot * per + i, "name": f"w{slot}", "qty": i},
                    )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(s,)) for s in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    with ReproClient(HOST, served.port, tenant="acme") as c:
        assert c.aggregate("items", "count") == workers * per
        for slot in range(workers):
            assert c.aggregate(
                "items", "count", predicate=Eq("name", f"w{slot}")
            ) == per


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


def test_rate_limit_rejects_beyond_budget(tmp_path):
    config = ServerConfig(rate_limit=5.0, burst=5.0)
    with ServerThread(str(tmp_path / "data"), config) as thread:
        with ReproClient(HOST, thread.port) as client:
            seed_tenant(client, rows=0)
            view = client.for_tenant("acme")
            statuses = [
                r.status
                for r in view.pipeline(
                    [(Op.TABLES, {})] * 30
                )
            ]
            # seed_tenant already drew from the 5-token burst; what is
            # left admits a few requests and rejects the rest.
            assert 1 <= statuses.count(Status.OK) <= 10
            assert Status.RATE_LIMITED in statuses
            # The plain call surface raises the typed rejection.
            with pytest.raises(Rejected):
                for _ in range(30):
                    view.tables()


def test_inflight_quota_rejects_pileups(tmp_path):
    config = ServerConfig(max_inflight=1, workers=4)
    with ServerThread(str(tmp_path / "data"), config) as thread:
        with ReproClient(HOST, thread.port) as client:
            seed_tenant(client, rows=0)
            batch = [{"id": i, "name": "b", "qty": i} for i in range(500)]
            responses = client.pipeline(
                [(Op.INSERT_MANY, {"table": "items", "rows": batch})] * 8,
                tenant="acme",
            )
            statuses = [r.status for r in responses]
            assert Status.OK in statuses
            assert Status.TOO_MANY_INFLIGHT in statuses
            # Rejected batches were never applied partially: the count is
            # an exact multiple of the batch size.
            count = client.aggregate("items", "count", tenant="acme")
            assert count == 500 * statuses.count(Status.OK)


def test_admin_ops_bypass_admission(tmp_path):
    config = ServerConfig(rate_limit=1.0, burst=1.0)
    with ServerThread(str(tmp_path / "data"), config) as thread:
        with ReproClient(HOST, thread.port) as client:
            for _ in range(20):
                client.ping()
            assert client.list_tenants()["tenants"] == []


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_restart_recovers_tenants_in_process(tmp_path):
    path = str(tmp_path / "data")
    with ServerThread(path) as thread:
        with ReproClient(HOST, thread.port) as client:
            seed_tenant(client, rows=25)
    with ServerThread(path) as thread:
        with ReproClient(HOST, thread.port) as client:
            assert client.list_tenants()["tenants"] == [
                {"name": "acme", "shards": 1, "mode": "nvm"}
            ]
            assert client.aggregate("items", "count", tenant="acme") == 25
            report = client.recovery_reports("acme")["acme"]
            assert report["total_seconds"] >= 0.0


def test_stop_is_idempotent(tmp_path):
    thread = ServerThread(str(tmp_path / "data"))
    thread.start()
    thread.stop()
    thread.stop()


def test_metrics_over_the_wire(client):
    seed_tenant(client)
    registry = client.metrics()
    assert any(
        key.startswith("server_requests_total") and 'tenant="acme"' in key
        for key in registry
    )
    text = client.metrics(format="prometheus")
    assert "server_requests_total" in text
    assert 'tenant="acme"' in text


def test_server_metrics_snapshot(served, client):
    seed_tenant(client)
    snapshot = served.server.metrics_snapshot()
    assert "acme" in snapshot["tenants"]
    assert "acme" in snapshot["attached"]
    assert any(
        key.startswith("server_requests_total") for key in snapshot["registry"]
    )
