"""Hash-sharded engine: routing, fan-out, parallel recovery, failure injection."""

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.core.sharding import ShardedEngine, partition_of
from repro.query.predicate import Between, Eq
from repro.recovery.report import ShardedRecoveryReport
from repro.storage.types import DataType

from tests.conftest import make_config

SCHEMA = {"id": DataType.INT64, "name": DataType.STRING}


def rows(n, start=0):
    return [{"id": i, "name": f"row-{i}"} for i in range(start, start + n)]


def make_engine(tmp_path, mode=DurabilityMode.NVM, shards=4, **overrides):
    return ShardedEngine(
        str(tmp_path / "eng"), make_config(mode, shards=shards, **overrides)
    )


class TestPartitioning:
    def test_deterministic_and_in_range(self):
        for value in (0, 1, -7, 2**40, 3.5, -0.0, "abc", "", None, True, False):
            first = partition_of(value, 4)
            assert 0 <= first < 4
            assert partition_of(value, 4) == first

    def test_single_shard_short_circuits(self):
        assert partition_of("anything", 1) == 0

    def test_unsupported_key_type(self):
        with pytest.raises(TypeError, match="partition key"):
            partition_of([1, 2], 4)

    def test_int_keys_spread_across_shards(self):
        buckets = {partition_of(i, 4) for i in range(100)}
        assert buckets == {0, 1, 2, 3}

    def test_database_rejects_multi_shard_config(self, tmp_path):
        with pytest.raises(ValueError, match="ShardedEngine"):
            Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM, shards=4))


class TestManifest:
    def test_shard_count_fixed_at_creation(self, tmp_path):
        eng = make_engine(tmp_path, shards=4)
        eng.close()
        with pytest.raises(ValueError, match="fixed at creation"):
            make_engine(tmp_path, shards=2)

    def test_reopen_with_default_config_keeps_count(self, tmp_path):
        eng = make_engine(tmp_path, shards=4)
        eng.close()
        # shards=1 (the default) means "whatever the manifest says".
        reopened = make_engine(tmp_path, shards=1)
        assert reopened.num_shards == 4
        reopened.close()

    def test_partition_key_persisted(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA, partition_key="name")
        eng = eng.restart()
        assert eng.partition_key("t") == "name"
        eng.close()

    def test_partition_key_defaults_to_first_column(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        assert eng.partition_key("t") == "id"
        eng.close()

    def test_bad_partition_key_rejected(self, tmp_path):
        eng = make_engine(tmp_path)
        with pytest.raises(ValueError, match="not a column"):
            eng.create_table("t", SCHEMA, partition_key="ghost")
        eng.close()


class TestRoutingAndQueries:
    def test_rows_land_on_their_hash_shard(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(500))
        for shard_index, shard in enumerate(eng.shards):
            for row_id in shard.query("t").column("id"):
                assert partition_of(row_id, eng.num_shards) == shard_index
        eng.close()

    def test_query_fans_out_and_merges(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(500))
        result = eng.query("t")
        assert result.count == len(result) == 500
        assert sorted(result.column("id")) == list(range(500))
        window = eng.query("t", Between("id", 100, 109))
        assert sorted(r["id"] for r in window.rows()) == list(range(100, 110))
        cols = eng.query("t", Eq("id", 42)).columns()
        assert cols == {"id": [42], "name": ["row-42"]}
        eng.close()

    def test_point_lookup_routes_to_one_shard(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.insert("t", {"id": 99, "name": "solo"})
        owner = eng.shard_for("t", 99)
        assert owner.query("t", Eq("id", 99)).count == 1
        others = [s for s in eng.shards if s is not owner]
        assert all(s.query("t").count == 0 for s in others)
        eng.close()

    def test_shard_local_transactions(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        shard = eng.shard_for("t", 5)
        with shard.begin() as txn:
            txn.insert("t", {"id": 5, "name": "txn-row"})
        assert eng.query("t", Eq("id", 5)).count == 1
        eng.close()

    def test_global_cid_shared_across_shards(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        cid1 = eng.bulk_insert("t", rows(100))
        cid2 = eng.bulk_insert("t", rows(100, start=100))
        assert cid2 > cid1
        assert eng.last_cid == cid2
        # every shard's horizon reached the global cid
        assert all(s.last_cid == cid2 for s in eng.shards)
        eng.close()


class TestLifecycle:
    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_restart_round_trip(self, tmp_path, mode):
        eng = make_engine(tmp_path, mode=mode)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(400))
        eng = eng.restart()
        assert eng.query("t").count == 400
        assert eng.verify() == []
        report = eng.last_recovery
        assert isinstance(report, ShardedRecoveryReport)
        assert report.shards == 4
        assert report.parallel_speedup > 0
        assert any("parallel speedup" in line for line in report.summary_lines())
        eng.close()

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_crash_recovery_loses_no_committed_rows(self, tmp_path, mode):
        eng = make_engine(tmp_path, mode=mode)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(400))
        eng.crash(seed=11)
        eng = make_engine(tmp_path, mode=mode)
        assert sorted(eng.query("t").column("id")) == list(range(400))
        assert eng.verify() == []
        eng.close()

    def test_double_close_and_close_after_crash(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.crash()
        eng.close()
        eng.close()

    def test_ddl_fans_out(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.create_index("t", "id")
        assert all("id" in s.indexes_on("t") for s in eng.shards)
        eng.bulk_insert("t", rows(100))
        eng.merge("t")
        assert all(s.table("t").generation == 1 for s in eng.shards)
        eng.drop_table("t")
        assert eng.table_names == []
        with pytest.raises(KeyError, match="no sharded table"):
            eng.partition_key("t")
        eng.close()

    def test_checkpoint_fans_out(self, tmp_path):
        eng = make_engine(tmp_path, mode=DurabilityMode.LOG)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(100))
        assert eng.checkpoint() > 0
        eng.crash()
        eng = make_engine(tmp_path, mode=DurabilityMode.LOG)
        assert eng.query("t").count == 100
        assert eng.last_recovery.phase_seconds("checkpoint_load") > 0
        eng.close()

    def test_stats_aggregate(self, tmp_path):
        eng = make_engine(tmp_path)
        eng.create_table("t", SCHEMA)
        eng.bulk_insert("t", rows(100))
        stats = eng.stats()
        assert stats["shards"] == 4
        assert len(stats["per_shard"]) == 4
        assert eng.logical_bytes() == sum(
            s.logical_bytes() for s in eng.shards
        )
        eng.close()


class TestCrashMidBulkInsert:
    """A crash between per-shard sub-batches must never lose committed
    data, and every surviving shard must stay individually consistent."""

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_committed_batches_survive_partial_fanout(
        self, tmp_path, mode, monkeypatch
    ):
        eng = make_engine(tmp_path, mode=mode)
        eng.create_table("t", SCHEMA)
        committed = rows(300)
        eng.bulk_insert("t", committed)

        # Fail the fan-out on one shard mid-batch: its sub-batch never
        # commits while the other shards' sub-batches do.
        victim = eng.shards[2]
        original = Database.bulk_insert

        def failing_bulk_insert(self, table_name, batch, _cid=None):
            if self is victim:
                raise OSError("injected: power lost on shard 2")
            return original(self, table_name, batch, _cid=_cid)

        monkeypatch.setattr(Database, "bulk_insert", failing_bulk_insert)
        with pytest.raises(OSError, match="injected"):
            eng.bulk_insert("t", rows(300, start=300))
        monkeypatch.undo()

        eng.crash(seed=3)
        eng = make_engine(tmp_path, mode=mode)
        recovered = sorted(eng.query("t").column("id"))
        # Every originally committed row survived on every shard...
        assert set(range(300)).issubset(recovered)
        # ...and nothing appears twice.
        assert len(recovered) == len(set(recovered))
        # Shards that committed their sub-batch before the crash keep it
        # (atomic per shard): a shard holds either all or none of its slice.
        second = rows(300, start=300)
        for index, shard in enumerate(eng.shards):
            expected_slice = {
                r["id"]
                for r in second
                if partition_of(r["id"], eng.num_shards) == index
            }
            held = set(shard.query("t").column("id")) & set(range(300, 600))
            assert held in (set(), expected_slice)
        assert eng.verify() == []
        eng.close()
