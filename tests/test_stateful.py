"""Stateful (rule-based) property tests for the persistent structures."""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.nvm.phash import PHashMap
from repro.nvm.pool import PMemPool
from repro.nvm.pvector import PVector


class PHashModel(RuleBasedStateMachine):
    """PHashMap against a multiset-of-pairs model, with reattaches."""

    def __init__(self):
        super().__init__()
        import tempfile

        self._dir = tempfile.mkdtemp()
        self.pool = PMemPool.create(
            self._dir + "/pool", extent_size=2 * 1024 * 1024
        )
        self.map = PHashMap.create(self.pool, capacity=8)
        self.model: list[tuple[int, int]] = []

    @rule(key=st.integers(0, 30), value=st.integers(0, 2**62))
    def insert(self, key, value):
        self.map.insert(key, value)
        self.model.append((key, value))

    @rule(key=st.integers(0, 30), value=st.integers(0, 2**62))
    def remove(self, key, value):
        expected = (key, value) in self.model
        assert self.map.remove_one(key, value) == expected
        if expected:
            self.model.remove((key, value))

    @rule()
    def reattach(self):
        self.map = PHashMap.attach(self.pool, self.map.offset)

    @rule(key=st.integers(0, 30))
    def lookup(self, key):
        expected = sorted(v for k, v in self.model if k == key)
        assert sorted(self.map.get_all(key)) == expected

    @invariant()
    def count_matches(self):
        assert len(self.map) == len(self.model)

    def teardown(self):
        if not self.pool._closed:
            self.pool.close()


class PVectorModel(RuleBasedStateMachine):
    """PVector against a list model, with clean-close reattaches."""

    def __init__(self):
        super().__init__()
        import tempfile

        self._dir = tempfile.mkdtemp()
        self.pool = PMemPool.create(
            self._dir + "/pool", extent_size=2 * 1024 * 1024
        )
        self.vec = PVector.create(self.pool, np.uint64, chunk_capacity=4)
        self.pool.set_root(self.vec.offset)
        self.model: list[int] = []

    @rule(value=st.integers(0, 2**63))
    def append(self, value):
        assert self.vec.append(value) == len(self.model)
        self.model.append(value)

    @rule(values=st.lists(st.integers(0, 2**63), max_size=15))
    def extend(self, values):
        self.vec.extend(np.asarray(values, dtype=np.uint64))
        self.model.extend(values)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def set_element(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        value = data.draw(st.integers(0, 2**63))
        self.vec.set(index, value)
        self.model[index] = value

    @rule()
    def reopen(self):
        self.pool.close()
        self.pool = PMemPool.open(self._dir + "/pool")
        self.vec = PVector.attach(self.pool, self.pool.root_offset)

    @invariant()
    def contents_match(self):
        assert list(self.vec.to_numpy()) == self.model

    def teardown(self):
        if not self.pool._closed:
            self.pool.close()


TestPHashModel = PHashModel.TestCase
TestPHashModel.settings = settings(max_examples=25, deadline=None, stateful_step_count=30)

TestPVectorModel = PVectorModel.TestCase
TestPVectorModel.settings = settings(max_examples=25, deadline=None, stateful_step_count=30)


def test_run_all_single_experiment():
    """The standalone runner regenerates an experiment table."""
    from repro.bench.run_all import run_e7

    table = run_e7(quick=True)
    assert "E7" in table
    assert "volatile" in table and "persistent" in table


def test_run_all_cli_only_filter(capsys, tmp_path):
    from repro.bench import run_all

    out = str(tmp_path / "report.txt")
    assert run_all.main(["--quick", "--only", "E2", "--out", out]) == 0
    text = capsys.readouterr().out
    assert "E2" in text
    with open(out) as f:
        assert "recovery breakdown" in f.read()


def test_database_verify_clean(none_db):
    from repro.storage.types import DataType

    none_db.create_table("t", {"a": DataType.INT64})
    none_db.insert("t", {"a": 1})
    assert none_db.verify() == []


def test_database_verify_detects_damage(none_db):
    from repro.storage.types import DataType

    none_db.create_table("t", {"a": DataType.INT64})
    none_db.insert("t", {"a": 1})
    none_db.table("t").delta.mvcc.set_tid(0, 42)  # corrupt on purpose
    assert none_db.verify() != []
