"""Tenant catalog tests: registry durability, LRU attach, isolation.

The last test is the multi-tenant durability oracle: a real server
process is SIGKILLed while clients are mid-commit in two tenants, and
after restart every *acked* write must be present in its own tenant —
and only there.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading

import pytest

from repro.core.config import EngineConfig
from repro.query.predicate import Eq
from repro.server.client import ReproClient, wait_for_server
from repro.server.proc import free_port, spawn_server
from repro.server.tenants import (
    InvalidTenantName,
    NoSuchTenant,
    TenantCatalog,
    TenantError,
    TenantExists,
    tenant_dir,
)
from repro.storage.types import DataType

SCHEMA = {"id": DataType.INT64, "val": DataType.STRING}


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "srv")


def make_catalog(root, **kwargs):
    return TenantCatalog(root, EngineConfig(), **kwargs)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_create_list_exists(root):
    catalog = make_catalog(root)
    try:
        row = catalog.create_tenant("acme")
        assert row == {"name": "acme", "shards": 1, "mode": "nvm"}
        catalog.create_tenant("globex", shards=2)
        assert catalog.tenant_names() == ["acme", "globex"]
        assert catalog.exists("acme")
        assert not catalog.exists("initech")
        assert os.path.isdir(tenant_dir(root, "acme"))
    finally:
        catalog.close()


@pytest.mark.parametrize(
    "name", ["", "UPPER", "has space", "-leading", "a" * 65, "dot.dot", "../evil"]
)
def test_invalid_names_rejected(root, name):
    catalog = make_catalog(root)
    try:
        with pytest.raises(InvalidTenantName):
            catalog.create_tenant(name)
    finally:
        catalog.close()


def test_duplicate_create_rejected(root):
    catalog = make_catalog(root)
    try:
        catalog.create_tenant("acme")
        with pytest.raises(TenantExists):
            catalog.create_tenant("acme")
    finally:
        catalog.close()


def test_catalog_survives_restart(root):
    catalog = make_catalog(root)
    catalog.create_tenant("acme", shards=2)
    engine = catalog.acquire("acme")
    engine.create_table("t", SCHEMA, partition_key="id")
    engine.insert_many("t", [{"id": i, "val": "x"} for i in range(30)])
    catalog.release("acme")
    catalog.close()

    catalog = make_catalog(root)
    try:
        assert catalog.tenants() == [{"name": "acme", "shards": 2, "mode": "nvm"}]
        reports = catalog.recover_all()
        assert "acme" in reports
        engine = catalog.acquire("acme")
        # The recorded shard count (not the default) shaped the reopen.
        assert engine.config.shards == 2
        assert len(engine.query("t")) == 30
        catalog.release("acme")
    finally:
        catalog.close()


def test_drop_tenant_removes_row_and_data(root):
    catalog = make_catalog(root)
    try:
        catalog.create_tenant("acme")
        engine = catalog.acquire("acme")
        engine.create_table("t", SCHEMA)
        engine.insert("t", {"id": 1, "val": "x"})
        catalog.release("acme")
        catalog.drop_tenant("acme")
        assert not catalog.exists("acme")
        assert not os.path.exists(tenant_dir(root, "acme"))
        with pytest.raises(NoSuchTenant):
            catalog.acquire("acme")
        with pytest.raises(NoSuchTenant):
            catalog.drop_tenant("acme")
        # The name is reusable and starts empty.
        catalog.create_tenant("acme")
        assert catalog.acquire("acme").table_names == []
        catalog.release("acme")
    finally:
        catalog.close()


def test_drop_refuses_pinned_tenant(root):
    catalog = make_catalog(root)
    try:
        catalog.create_tenant("acme")
        catalog.acquire("acme")
        with pytest.raises(TenantError, match="in-flight"):
            catalog.drop_tenant("acme")
        catalog.release("acme")
        catalog.drop_tenant("acme")
    finally:
        catalog.close()


# ----------------------------------------------------------------------
# Attachment LRU
# ----------------------------------------------------------------------


def test_lru_eviction_and_reattach(root):
    catalog = make_catalog(root, max_attached=2)
    try:
        for name in ("t1", "t2", "t3"):
            catalog.create_tenant(name)
            engine = catalog.acquire(name)
            engine.create_table("t", SCHEMA)
            engine.insert("t", {"id": 1, "val": name})
            catalog.release(name)
        # Only the cap stays attached; the oldest was evicted (closed).
        assert len(catalog.attached_names()) == 2
        assert "t1" not in catalog.attached_names()
        # Reattach recovers the evicted tenant transparently.
        engine = catalog.acquire("t1")
        assert engine.query("t").rows() == [{"id": 1, "val": "t1"}]
        catalog.release("t1")
        assert len(catalog.attached_names()) == 2
    finally:
        catalog.close()


def test_eviction_skips_pinned(root):
    catalog = make_catalog(root, max_attached=1)
    try:
        catalog.create_tenant("pinned")
        catalog.create_tenant("other")
        engine = catalog.acquire("pinned")
        other = catalog.acquire("other")
        # Both stay open: the pinned one could not be evicted.
        assert not engine.is_closed
        assert not other.is_closed
        assert "pinned" in catalog.attached_names()
        catalog.release("pinned")
        catalog.release("other")
        # Next attach can now shrink back to the cap.
        catalog.acquire("other")
        catalog.release("other")
        assert catalog.attached_names() == ["other"]
    finally:
        catalog.close()


def test_close_is_idempotent(root):
    catalog = make_catalog(root)
    catalog.create_tenant("acme")
    catalog.acquire("acme")
    catalog.release("acme")
    catalog.close()
    catalog.close()
    assert catalog.is_closed


# ----------------------------------------------------------------------
# Isolation
# ----------------------------------------------------------------------


def test_same_named_tables_are_isolated(root):
    catalog = make_catalog(root)
    try:
        for name, rows in (("acme", 5), ("globex", 9)):
            catalog.create_tenant(name)
            engine = catalog.acquire(name)
            engine.create_table("orders", SCHEMA)
            engine.insert_many(
                "orders", [{"id": i, "val": f"{name}-{i}"} for i in range(rows)]
            )
            catalog.release(name)
        acme = catalog.acquire("acme")
        globex = catalog.acquire("globex")
        assert len(acme.query("orders")) == 5
        assert len(globex.query("orders")) == 9
        assert acme.query("orders", Eq("val", "globex-0")).rows() == []
        # DDL in one namespace is invisible to the other.
        acme.create_table("acme_only", SCHEMA)
        assert "acme_only" not in globex.table_names
        catalog.release("acme")
        catalog.release("globex")
    finally:
        catalog.close()


# ----------------------------------------------------------------------
# The multi-tenant durability oracle (real process, SIGKILL mid-commit)
# ----------------------------------------------------------------------


TENANTS = ("acme", "globex")
WIRE_SCHEMA = [["id", "int64"], ["val", "string"]]


def test_kill_mid_commit_acked_writes_survive_per_tenant():
    base = tempfile.mkdtemp(prefix="tenant-oracle-")
    port = free_port()
    proc = spawn_server(base, port)
    try:
        wait_for_server("127.0.0.1", port)
        with ReproClient("127.0.0.1", port) as admin:
            for tenant in TENANTS:
                admin.create_tenant(tenant)
                admin.create_table("t", WIRE_SCHEMA, tenant=tenant)

        acked: dict[str, list] = {tenant: [] for tenant in TENANTS}
        stop = threading.Event()

        def writer(tenant: str) -> None:
            # Insert until the server dies under us; every *returned*
            # insert is an acked commit and must survive.
            try:
                with ReproClient("127.0.0.1", port, tenant=tenant) as c:
                    i = 0
                    while not stop.is_set():
                        c.insert("t", {"id": i, "val": f"{tenant}-{i}"})
                        acked[tenant].append(i)
                        i += 1
            except (ConnectionError, OSError):
                pass  # the kill landed mid-request; that write is unacked

        threads = [
            threading.Thread(target=writer, args=(tenant,)) for tenant in TENANTS
        ]
        for thread in threads:
            thread.start()
        # Let both writers build up a stream of acked commits, then
        # SIGKILL mid-service.
        while any(len(ids) < 50 for ids in acked.values()):
            pass
        proc.kill()
        proc.wait(timeout=30)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        proc = spawn_server(base, port)
        wait_for_server("127.0.0.1", port, timeout=60)
        with ReproClient("127.0.0.1", port) as client:
            for tenant in TENANTS:
                rows = client.query("t", tenant=tenant)
                by_id = {row["id"]: row["val"] for row in rows}
                # Every acked write survived, with the right payload, in
                # the right namespace.
                for i in acked[tenant]:
                    assert by_id.get(i) == f"{tenant}-{i}", (
                        f"{tenant}: acked row {i} lost or corrupted"
                    )
                # No foreign rows leaked in.
                assert all(val.startswith(tenant) for val in by_id.values())
                # At most one unacked in-flight row beyond the acked set.
                assert len(rows) <= len(acked[tenant]) + 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        shutil.rmtree(base, ignore_errors=True)
