"""Unit tests for transaction tables, the manager, and MVCC semantics."""

import pytest

from repro.storage.backend import NvmBackend, VolatileBackend
from repro.storage.mvcc import INFINITY_CID, NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.txn.errors import (
    TooManyActiveTransactions,
    TransactionAborted,
    TransactionConflict,
)
from repro.txn.manager import (
    TransactionManager,
    VolatileCidStore,
    VolatileTidAllocator,
)
from repro.txn.txn_table import (
    OP_INSERT,
    OP_INVALIDATE,
    PersistentTxnTable,
    SLOT_ACTIVE,
    SLOT_COMMITTING,
    SLOT_FREE,
    VolatileTxnTable,
)

SCHEMA = Schema.of(id=DataType.INT64, name=DataType.STRING)


@pytest.fixture(params=["volatile", "persistent"])
def txn_table(request, pool):
    if request.param == "volatile":
        return VolatileTxnTable(slot_count=8)
    return PersistentTxnTable.create(pool, slot_count=8)


class TestTxnTables:
    def test_begin_claims_active_slot(self, txn_table):
        slot = txn_table.begin(tid=5)
        assert txn_table.state(slot) == SLOT_ACTIVE
        assert txn_table.tid(slot) == 5

    def test_slot_exhaustion(self, txn_table):
        for i in range(8):
            txn_table.begin(tid=i + 1)
        with pytest.raises(TooManyActiveTransactions):
            txn_table.begin(tid=99)

    def test_free_recycles_slot(self, txn_table):
        slot = txn_table.begin(tid=1)
        txn_table.mark_free(slot)
        assert txn_table.state(slot) == SLOT_FREE
        again = txn_table.begin(tid=2)
        assert again == slot

    def test_records_in_order(self, txn_table):
        slot = txn_table.begin(tid=1)
        expected = [(OP_INSERT, 1, i) for i in range(70)]  # spans chunks
        for kind, table_id, ref in expected:
            txn_table.record(slot, kind, table_id, ref)
        assert txn_table.records(slot) == expected

    def test_commit_point_recorded(self, txn_table):
        slot = txn_table.begin(tid=1)
        txn_table.set_committing(slot, cid=42)
        assert txn_table.state(slot) == SLOT_COMMITTING
        assert txn_table.cid(slot) == 42

    def test_in_flight_lists_busy_slots(self, txn_table):
        a = txn_table.begin(tid=1)
        b = txn_table.begin(tid=2)
        txn_table.set_committing(b, cid=10)
        flights = {slot: (state, tid) for slot, state, tid, _ in txn_table.in_flight()}
        assert flights[a] == (SLOT_ACTIVE, 1)
        assert flights[b] == (SLOT_COMMITTING, 2)

    def test_new_transaction_resets_records(self, txn_table):
        slot = txn_table.begin(tid=1)
        txn_table.record(slot, OP_INSERT, 1, 1)
        txn_table.mark_free(slot)
        slot2 = txn_table.begin(tid=2)
        assert slot2 == slot
        assert txn_table.records(slot2) == []


class TestPersistentTxnTableRestart:
    def test_in_flight_survives_reattach(self, pool):
        table = PersistentTxnTable.create(pool, slot_count=4)
        slot = table.begin(tid=7)
        table.record(slot, OP_INVALIDATE, 3, 12)
        again = PersistentTxnTable.attach(pool, table.offset)
        flights = list(again.in_flight())
        assert len(flights) == 1
        assert flights[0][2] == 7
        assert again.records(slot) == [(OP_INVALIDATE, 3, 12)]

    def test_free_slots_rediscovered(self, pool):
        table = PersistentTxnTable.create(pool, slot_count=4)
        slot = table.begin(tid=1)
        table.mark_free(slot)
        table.begin(tid=2)
        again = PersistentTxnTable.attach(pool, table.offset)
        # 3 free slots must be available.
        for i in range(3):
            again.begin(tid=10 + i)
        with pytest.raises(TooManyActiveTransactions):
            again.begin(tid=99)

    def test_chunk_recycling(self, pool):
        table = PersistentTxnTable.create(pool, slot_count=4)
        slot = table.begin(tid=1)
        for i in range(40):  # two chunks
            table.record(slot, OP_INSERT, 1, i)
        allocs_before = pool.stats.allocations
        table.mark_free(slot)
        slot = table.begin(tid=2)
        for i in range(40):
            table.record(slot, OP_INSERT, 1, i)
        # The two chunks were reused, not reallocated.
        assert pool.stats.allocations == allocs_before


@pytest.fixture(params=["volatile", "nvm"])
def env(request, pool):
    if request.param == "volatile":
        backend = VolatileBackend()
        txn_table = VolatileTxnTable(slot_count=16)
    else:
        backend = NvmBackend(pool)
        txn_table = PersistentTxnTable.create(pool, slot_count=16)
    table = Table.create(1, "t", SCHEMA, backend)
    manager = TransactionManager(
        txn_table,
        VolatileCidStore(),
        VolatileTidAllocator(),
        {1: table}.__getitem__,
    )
    return manager, table


class TestManagerBasics:
    def test_commit_makes_row_visible(self, env):
        manager, table = env
        ctx = manager.begin()
        manager.insert(ctx, table, [1, "a"])
        cid = manager.commit(ctx)
        assert cid == 1
        assert list(table.delta.mvcc.visible_mask(cid)) == [True]

    def test_uncommitted_invisible_to_others(self, env):
        manager, table = env
        writer = manager.begin()
        ref = manager.insert(writer, table, [1, "a"])
        reader = manager.begin()
        assert not reader.row_visible(table, ref)
        assert writer.row_visible(table, ref)

    def test_snapshot_isolation(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        old_reader = manager.begin()
        deleter = manager.begin()
        manager.invalidate(deleter, table, ref)
        manager.commit(deleter)
        # The reader's snapshot predates the delete.
        assert old_reader.row_visible(table, ref)
        late_reader = manager.begin()
        assert not late_reader.row_visible(table, ref)

    def test_abort_rolls_back(self, env):
        manager, table = env
        ctx = manager.begin()
        ref = manager.insert(ctx, table, [1, "a"])
        manager.abort(ctx)
        reader = manager.begin()
        assert not reader.row_visible(table, ref)
        mvcc, idx = table.mvcc_for(ref)
        assert mvcc.get_tid(idx) == NO_TID
        assert mvcc.get_begin(idx) == INFINITY_CID

    def test_abort_releases_invalidation_lock(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        deleter = manager.begin()
        manager.invalidate(deleter, table, ref)
        manager.abort(deleter)
        retry = manager.begin()
        manager.invalidate(retry, table, ref)  # no conflict
        manager.commit(retry)

    def test_read_only_commit_has_no_cid(self, env):
        manager, table = env
        ctx = manager.begin()
        assert manager.commit(ctx) is None
        assert manager.last_cid == 0

    def test_operations_on_finished_txn_rejected(self, env):
        manager, table = env
        ctx = manager.begin()
        manager.commit(ctx)
        with pytest.raises(TransactionAborted):
            manager.insert(ctx, table, [1, "a"])
        with pytest.raises(TransactionAborted):
            manager.commit(ctx)

    def test_update_creates_new_version(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "old"])
        manager.commit(setup)
        updater = manager.begin()
        new_ref = manager.update(updater, table, ref, {"name": "new"})
        manager.commit(updater)
        reader = manager.begin()
        assert not reader.row_visible(table, ref)
        assert reader.row_visible(table, new_ref)
        assert table.get_row(new_ref) == [1, "new"]

    def test_update_unknown_column_rejected(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        ctx = manager.begin()
        with pytest.raises(KeyError):
            manager.update(ctx, table, ref, {"nope": 1})

    def test_own_update_visible_before_commit(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "old"])
        manager.commit(setup)
        ctx = manager.begin()
        new_ref = manager.update(ctx, table, ref, {"name": "mine"})
        assert not ctx.row_visible(table, ref)
        assert ctx.row_visible(table, new_ref)


class TestConflicts:
    def test_write_write_conflict(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        first = manager.begin()
        second = manager.begin()
        manager.invalidate(first, table, ref)
        with pytest.raises(TransactionConflict):
            manager.invalidate(second, table, ref)
        assert manager.conflicts == 1

    def test_delete_already_deleted_conflicts(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        deleter = manager.begin()
        manager.invalidate(deleter, table, ref)
        manager.commit(deleter)
        late = manager.begin()
        with pytest.raises(TransactionConflict):
            manager.invalidate(late, table, ref)

    def test_cannot_delete_invisible_row(self, env):
        manager, table = env
        writer = manager.begin()
        ref = manager.insert(writer, table, [1, "a"])
        other = manager.begin()
        with pytest.raises(TransactionConflict):
            manager.invalidate(other, table, ref)

    def test_double_delete_same_txn_conflicts(self, env):
        manager, table = env
        setup = manager.begin()
        ref = manager.insert(setup, table, [1, "a"])
        manager.commit(setup)
        ctx = manager.begin()
        manager.invalidate(ctx, table, ref)
        with pytest.raises(TransactionConflict):
            manager.invalidate(ctx, table, ref)

    def test_insert_then_delete_own_row(self, env):
        manager, table = env
        ctx = manager.begin()
        ref = manager.insert(ctx, table, [1, "a"])
        manager.invalidate(ctx, table, ref)
        cid = manager.commit(ctx)
        reader = manager.begin()
        assert not reader.row_visible(table, ref)


class TestCidAndTid:
    def test_cids_monotonic(self, env):
        manager, table = env
        for i in range(3):
            ctx = manager.begin()
            manager.insert(ctx, table, [i, "x"])
            assert manager.commit(ctx) == i + 1
        assert manager.last_cid == 3

    def test_tids_unique(self, env):
        manager, table = env
        tids = set()
        for _ in range(10):
            ctx = manager.begin()
            tids.add(ctx.tid)
            manager.commit(ctx)
        assert len(tids) == 10
        assert NO_TID not in tids
