"""Tests for the recovery validator, engine config, and latency model."""

import pytest

from repro.core.config import DurabilityMode, EngineConfig
from repro.nvm.latency import LatencyModel, NvmStats, busy_wait_ns
from repro.recovery.validator import validate_database, validate_table
from repro.storage.backend import VolatileBackend
from repro.storage.mvcc import NO_TID
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType

SCHEMA = Schema.of(id=DataType.INT64)


def _committed_table():
    backend = VolatileBackend()
    table = Table.create(1, "t", SCHEMA, backend)
    ref = table.insert_uncommitted([1], tid=1)
    mvcc, idx = table.mvcc_for(ref)
    mvcc.set_begin(idx, 1)
    mvcc.set_tid(idx, NO_TID)
    return table


class TestValidator:
    def test_clean_table_passes(self):
        table = _committed_table()
        assert validate_table(table, last_cid=1) == []

    def test_future_begin_detected(self):
        table = _committed_table()
        assert any(
            "beyond last_cid" in p for p in validate_table(table, last_cid=0)
        )

    def test_lingering_lock_detected(self):
        table = _committed_table()
        table.delta.mvcc.set_tid(0, 55)
        assert any("locked" in p for p in validate_table(table, last_cid=1))

    def test_end_before_begin_detected(self):
        table = _committed_table()
        table.delta.mvcc.set_begin(0, 5)
        table.delta.mvcc.set_end(0, 2)
        problems = validate_table(table, last_cid=5)
        assert any("end_cid < begin_cid" in p for p in problems)

    def test_invalidated_uncommitted_detected(self):
        backend = VolatileBackend()
        table = Table.create(1, "t", SCHEMA, backend)
        table.insert_uncommitted([1], tid=0)
        table.delta.mvcc.set_end(0, 1)
        problems = validate_table(table, last_cid=1)
        assert any("never committed" in p for p in problems)

    def test_validate_database_aggregates(self):
        tables = [_committed_table(), _committed_table()]
        tables[1].delta.mvcc.set_tid(0, 9)
        problems = validate_database(tables, last_cid=1)
        assert len(problems) == 1

    def test_uncommitted_garbage_is_fine(self):
        # Rolled-back rows (begin INF, tid 0) are expected and valid.
        backend = VolatileBackend()
        table = Table.create(1, "t", SCHEMA, backend)
        table.insert_uncommitted([1], tid=0)
        assert validate_table(table, last_cid=0) == []


class TestEngineConfig:
    def test_defaults_valid(self):
        EngineConfig().validated()

    def test_bad_group_commit(self):
        with pytest.raises(ValueError):
            EngineConfig(group_commit_size=-1).validated()

    def test_bad_txn_slots(self):
        with pytest.raises(ValueError):
            EngineConfig(txn_slots=0).validated()

    def test_persistent_dict_needs_nvm(self):
        with pytest.raises(ValueError):
            EngineConfig(
                mode=DurabilityMode.LOG, persistent_dict_index=True
            ).validated()


class TestLatencyModel:
    def test_modelled_time_components(self):
        stats = NvmStats(model=LatencyModel(read_ns_per_line=100, write_ns_per_line=200))
        stats.bytes_read = 640  # 10 lines
        stats.lines_flushed = 5
        stats.drain_calls = 2
        expected = 10 * 100 + 5 * 200 + 2 * stats.model.drain_ns
        assert stats.modelled_ns() == expected

    def test_write_multiplier_scales(self):
        base = NvmStats(model=LatencyModel(write_multiplier=1.0))
        scaled = NvmStats(model=LatencyModel(write_multiplier=4.0))
        for stats in (base, scaled):
            stats.lines_flushed = 10
        assert scaled.modelled_ns() > base.modelled_ns()

    def test_scaled_copy(self):
        model = LatencyModel()
        scaled = model.scaled(8.0)
        assert scaled.write_multiplier == 8.0
        assert scaled.read_ns_per_line == model.read_ns_per_line
        assert model.write_multiplier == 1.0  # original untouched

    def test_busy_wait_roughly_accurate(self):
        import time

        start = time.perf_counter_ns()
        busy_wait_ns(200_000)  # 0.2 ms
        elapsed = time.perf_counter_ns() - start
        assert elapsed >= 200_000

    def test_busy_wait_zero_returns_fast(self):
        busy_wait_ns(0)
        busy_wait_ns(-5)

    def test_snapshot_keys(self):
        stats = NvmStats()
        snap = stats.snapshot()
        assert "modelled_ns" in snap
        assert "lines_flushed" in snap
