"""Unit tests for log records, writer, and reader."""

import os

import pytest

from repro.wal.reader import count_records, read_log
from repro.wal.records import (
    AbortRecord,
    CommitRecord,
    CreateTableRecord,
    InsertRecord,
    InvalidateRecord,
    decode_record,
    encode_record,
)
from repro.wal.writer import LogWriter


RECORDS = [
    InsertRecord(1, 2, (5, "text", 2.5, None)),
    InvalidateRecord(3, 2, (1 << 63) | 17),
    CommitRecord(1, 9),
    AbortRecord(3),
    CreateTableRecord(4, "tbl", b"\x01\x02schema"),
]


class TestRecordCodec:
    @pytest.mark.parametrize("record", RECORDS, ids=lambda r: type(r).__name__)
    def test_roundtrip(self, record):
        frame = encode_record(record)
        decoded, end = decode_record(frame, 0)
        assert decoded == record
        assert end == len(frame)

    def test_unicode_values(self):
        record = InsertRecord(1, 1, ("héllo ✓", -1, 0.0))
        decoded, _ = decode_record(encode_record(record), 0)
        assert decoded == record

    def test_truncated_frame_returns_none(self):
        frame = encode_record(RECORDS[0])
        assert decode_record(frame[:-1], 0) is None
        assert decode_record(frame[:4], 0) is None

    def test_corrupt_payload_fails_crc(self):
        frame = bytearray(encode_record(RECORDS[0]))
        frame[-1] ^= 0xFF
        assert decode_record(bytes(frame), 0) is None

    def test_bool_values_rejected(self):
        with pytest.raises(TypeError):
            encode_record(InsertRecord(1, 1, (True,)))

    def test_unsupported_value_rejected(self):
        with pytest.raises(TypeError):
            encode_record(InsertRecord(1, 1, (object(),)))


class TestLogWriter:
    def test_writes_readable_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        writer.log_insert(1, 2, [5, "x"])
        writer.log_commit(1, 1)
        writer.close()
        records = [r for r, _ in read_log(path)]
        assert records == [InsertRecord(1, 2, (5, "x")), CommitRecord(1, 1)]

    def test_sync_per_commit(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        for i in range(5):
            writer.log_commit(i, i + 1)
        assert writer.syncs == 5
        writer.close()

    def test_group_commit_batches_syncs(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=4)
        for i in range(8):
            writer.log_commit(i, i + 1)
        assert writer.syncs == 2
        writer.close()

    def test_async_never_syncs_until_close(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0)
        for i in range(10):
            writer.log_commit(i, i + 1)
        assert writer.syncs == 0
        writer.close()
        assert writer.syncs == 1

    def test_crash_truncates_to_last_sync(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=2)
        writer.log_commit(1, 1)  # pending, not synced
        writer.log_commit(2, 2)  # triggers sync — 2 commits durable
        writer.log_commit(3, 3)  # pending again
        writer.crash()
        assert count_records(path) == 2

    def test_crash_before_any_sync_empties_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0)
        writer.log_insert(1, 1, [1])
        writer.crash()
        assert count_records(path) == 0

    def test_append_to_existing_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        writer.log_commit(1, 1)
        writer.close()
        writer = LogWriter(path, group_size=1)
        writer.log_commit(2, 2)
        writer.close()
        assert count_records(path) == 2

    def test_ddl_always_synced(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0)
        writer.log_create_table(1, "t", b"s")
        assert writer.syncs == 1
        writer.close()

    def test_lsn_tracks_bytes(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        assert writer.lsn == 0
        writer.log_commit(1, 1)
        assert writer.lsn == os.path.getsize(path)
        writer.close()

    def test_negative_group_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LogWriter(str(tmp_path / "w.log"), group_size=-1)


class TestReader:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_log(str(tmp_path / "absent.log"))) == []

    def test_start_lsn_skips_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        writer.log_commit(1, 1)
        middle = writer.lsn
        writer.log_commit(2, 2)
        writer.close()
        records = [r for r, _ in read_log(path, start_lsn=middle)]
        assert records == [CommitRecord(2, 2)]

    def test_stops_at_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        writer.log_commit(1, 1)
        writer.close()
        with open(path, "ab") as f:
            f.write(b"\x50\x00\x00\x00garbage")
        assert count_records(path) == 1

    def test_end_lsn_usable_as_resume_point(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=1)
        writer.log_commit(1, 1)
        writer.log_commit(2, 2)
        writer.close()
        pairs = list(read_log(path))
        __, first_end = pairs[0]
        resumed = [r for r, _ in read_log(path, start_lsn=first_end)]
        assert resumed == [CommitRecord(2, 2)]
