"""Streaming WAL reader + torn-tail crash model tests.

The reader must decode a multi-MB log in O(chunk) memory and produce
byte-identical results to a whole-file decode; the writer's torn-tail
crash mode must keep the synced prefix intact while leaving partial
records and garbage past it.
"""

import os
import struct
import tracemalloc


from repro.wal.reader import CHUNK_SIZE, MAX_RECORD_BYTES, count_records, read_log
from repro.wal.records import CommitRecord, InsertRecord, decode_record
from repro.wal.writer import LogWriter


def _reference_read(path: str, start_lsn: int = 0) -> list:
    """The old slurp-the-whole-file decode, kept as the oracle."""
    with open(path, "rb") as f:
        raw = f.read()
    out = []
    pos = start_lsn
    while True:
        decoded = decode_record(raw, pos)
        if decoded is None:
            return out
        record, end = decoded
        out.append((record, end))
        pos = end


def _write_log(path: str, txns: int) -> None:
    writer = LogWriter(path, group_size=0)
    for i in range(txns):
        writer.log_insert(i, 1, [i, "x" * 200])
        writer.log_commit(i, i + 1)
    writer.close()


class TestStreamingReader:
    def test_matches_reference_on_multi_mb_log(self, tmp_path):
        path = str(tmp_path / "big.log")
        _write_log(path, 8000)
        assert os.path.getsize(path) > 8 * CHUNK_SIZE  # many window slides
        assert list(read_log(path)) == _reference_read(path)

    def test_memory_stays_bounded_by_chunk_not_file(self, tmp_path):
        path = str(tmp_path / "big.log")
        _write_log(path, 8000)
        size = os.path.getsize(path)
        tracemalloc.start()
        records = sum(1 for _ in read_log(path))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert records == 16000
        assert peak < 4 * CHUNK_SIZE  # sliding window, not a slurp
        assert peak < size / 2

    def test_start_lsn_mid_file_matches_reference(self, tmp_path):
        path = str(tmp_path / "big.log")
        _write_log(path, 3000)
        pairs = _reference_read(path)
        _, resume = pairs[999]
        assert list(read_log(path, start_lsn=resume)) == pairs[1000:]

    def test_end_lsns_are_frame_boundaries(self, tmp_path):
        path = str(tmp_path / "small.log")
        _write_log(path, 3)
        previous = 0
        for record, end in read_log(path):
            # re-decoding from the previous boundary gives this record
            assert list(read_log(path, start_lsn=previous))[0][0] == record
            previous = end
        assert previous == os.path.getsize(path)

    def test_oversized_length_prefix_is_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_log(path, 5)
        with open(path, "ab") as f:
            # A garbage frame claiming a silly length must not make the
            # reader buffer gigabytes before the CRC rejects it.
            f.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
            f.write(b"junk")
        assert count_records(path) == 10

    def test_bad_crc_with_plausible_length_is_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_log(path, 5)
        with open(path, "ab") as f:
            f.write(struct.pack("<II", 10, 0xDEADBEEF) + b"0123456789")
        assert count_records(path) == 10


class TestTornTailCrash:
    def _writer_with_unsynced_tail(self, path: str) -> tuple:
        writer = LogWriter(path, group_size=0)
        writer.log_insert(1, 1, [1, "a"])
        writer.log_commit(1, 1)
        writer.sync()
        synced = writer.lsn
        writer.log_insert(2, 1, [2, "b"])  # never synced
        return writer, synced

    def test_zero_survivor_keeps_synced_prefix_only(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer, synced = self._writer_with_unsynced_tail(path)
        writer.crash(survivor_fraction=0.0, seed=3, torn_tail=True)
        # garbage exists past the synced frontier...
        assert os.path.getsize(path) > synced
        # ...but only the synced records decode
        pairs = list(read_log(path))
        assert [r for r, _ in pairs] == [
            InsertRecord(1, 1, (1, "a")),
            CommitRecord(1, 1),
        ]
        assert all(end <= synced for _, end in pairs)

    def test_partial_survivor_never_exposes_partial_record(self, tmp_path):
        for seed in range(8):
            path = str(tmp_path / f"wal-{seed}.log")
            writer, synced = self._writer_with_unsynced_tail(path)
            writer.crash(survivor_fraction=0.5, seed=seed, torn_tail=True)
            # The unsynced record survived only partially: it must be
            # invisible, and the synced prefix must be untouched.
            assert count_records(path) == 2
            assert all(end <= synced for _, end in read_log(path))

    def test_full_survivor_keeps_unsynced_record_before_garbage(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer, _ = self._writer_with_unsynced_tail(path)
        writer.crash(survivor_fraction=1.0, seed=1, torn_tail=True)
        records = [r for r, _ in read_log(path)]
        # the fully-written-back tail record is readable, the trailing
        # garbage stops iteration instead of corrupting it
        assert records == [
            InsertRecord(1, 1, (1, "a")),
            CommitRecord(1, 1),
            InsertRecord(2, 1, (2, "b")),
        ]

    def test_same_seed_same_torn_state(self, tmp_path):
        states = []
        for name in ("a", "b"):
            path = str(tmp_path / f"wal-{name}.log")
            writer, _ = self._writer_with_unsynced_tail(path)
            writer.crash(survivor_fraction=0.5, seed=42, torn_tail=True)
            with open(path, "rb") as f:
                states.append(f.read())
        assert states[0] == states[1]

    def test_clean_truncate_mode_unchanged(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer, synced = self._writer_with_unsynced_tail(path)
        writer.crash()  # default: the old clean-truncate model
        assert os.path.getsize(path) == synced
        assert count_records(path) == 2
