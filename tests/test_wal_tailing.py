"""Log-path hardening tests: resumable scans, live tailing, frame bounds.

The replication work leans on three reader/writer properties that plain
crash recovery never exercised:

* :func:`~repro.wal.reader.read_log` must say *where* and *why* a scan
  stopped (``last_good_lsn`` / ``stop_reason``) for every possible torn
  tail — swept here at every prefix length of a multi-record log;
* :func:`~repro.wal.reader.tail_log` must treat an incomplete frame as
  in-flight rather than torn, so a tailer racing a byte-at-a-time
  appender still sees every record exactly once, in order;
* :class:`~repro.wal.writer.LogWriter` must never emit a frame the
  reader would reject as garbage — oversized batches split by rows, an
  unsplittable row raises before anything is acknowledged.
"""

from __future__ import annotations

import os
import struct
import threading

import pytest

from repro.core.config import DurabilityMode, EngineConfig
from repro.core.database import Database
from repro.storage.types import DataType
from repro.wal.reader import MAX_RECORD_BYTES, count_records, read_log, tail_log
from repro.wal.records import InsertManyRecord, RecordTooLarge
from repro.wal.writer import LogWriter


def _build_log(path: str, records: int = 5) -> list[tuple]:
    """Write ``records`` insert records; return [(record, end_lsn)]."""
    writer = LogWriter(path, group_size=0)
    for i in range(records):
        writer.log_insert(i + 1, 1, (i, f"note-{i}"))
    writer.close()
    return list(read_log(path))


class TestStopReasons:
    def test_missing_file(self, tmp_path):
        scan = read_log(str(tmp_path / "nope.log"))
        assert list(scan) == []
        assert scan.stop_reason == "missing"
        assert scan.last_good_lsn == 0

    def test_clean_eof_at_boundary(self, tmp_path):
        path = str(tmp_path / "wal.log")
        expected = _build_log(path)
        scan = read_log(path)
        assert list(scan) == expected
        assert scan.stop_reason == "eof"
        assert scan.last_good_lsn == os.path.getsize(path)

    def test_crc_failure_mid_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        expected = _build_log(path)
        # Flip one payload byte of the third record.
        second_end = expected[1][1]
        with open(path, "r+b") as f:
            f.seek(second_end + 8 + 1)  # past the frame header
            byte = f.read(1)
            f.seek(second_end + 8 + 1)
            f.write(bytes([byte[0] ^ 0xFF]))
        scan = read_log(path)
        assert list(scan) == expected[:2]
        assert scan.stop_reason == "crc"
        assert scan.last_good_lsn == second_end

    def test_oversize_length_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        expected = _build_log(path)
        with open(path, "ab") as f:
            f.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
        scan = read_log(path)
        assert list(scan) == expected
        assert scan.stop_reason == "oversize"
        assert scan.last_good_lsn == expected[-1][1]

    def test_resume_from_mid_log_lsn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        expected = _build_log(path)
        resume = expected[2][1]
        scan = read_log(path, start_lsn=resume)
        assert list(scan) == expected[3:]
        assert scan.stop_reason == "eof"
        assert count_records(path, start_lsn=resume) == 2

    def test_every_prefix_length(self, tmp_path):
        """Truncate the log at *every* byte offset: the scan must yield
        exactly the intact records, report the right boundary, and
        classify the stop — never crash, never yield garbage."""
        source = str(tmp_path / "source.log")
        expected = _build_log(source)
        blob = open(source, "rb").read()
        boundaries = [0] + [end for _, end in expected]
        cut_path = str(tmp_path / "cut.log")
        for cut in range(len(blob) + 1):
            with open(cut_path, "wb") as f:
                f.write(blob[:cut])
            scan = read_log(cut_path)
            intact = [pair for pair in expected if pair[1] <= cut]
            assert list(scan) == intact, f"cut at {cut}"
            assert scan.last_good_lsn == max(
                b for b in boundaries if b <= cut
            ), f"cut at {cut}"
            if cut in boundaries:
                assert scan.stop_reason == "eof", f"cut at {cut}"
            else:
                assert scan.stop_reason == "short", f"cut at {cut}"


class TestLiveTail:
    def test_tailer_races_byte_at_a_time_appender(self, tmp_path):
        """An appender dribbling one byte per write means the tailer
        observes every possible torn prefix in passing; it must wait out
        each incomplete frame and still deliver all records in order."""
        source = str(tmp_path / "source.log")
        expected = _build_log(source, records=8)
        blob = open(source, "rb").read()
        live = str(tmp_path / "live.log")
        open(live, "wb").close()

        def appender() -> None:
            with open(live, "ab", buffering=0) as f:
                for i in range(len(blob)):
                    f.write(blob[i : i + 1])

        thread = threading.Thread(target=appender)
        thread.start()
        got = []
        tail = tail_log(
            live,
            poll_interval_s=0.0001,
            stop=lambda: len(got) >= len(expected),
        )
        for record, end_lsn in tail:
            got.append((record, end_lsn))
        thread.join()
        assert got == expected

    def test_frontier_withholds_unflushed_suffix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        expected = _build_log(path, records=3)
        limit = [expected[0][1]]  # only the first record is "durable"
        got = []
        tail = tail_log(
            path,
            poll_interval_s=0.0001,
            stop=lambda: len(got) >= 3,
            frontier=lambda: limit[0],
        )
        iterator = iter(tail)
        got.append(next(iterator))
        assert got == expected[:1]
        # The frontier holds: polling again must not yield record 2
        # until the frontier advances past it.
        limit[0] = expected[2][1]
        got.append(next(iterator))
        got.append(next(iterator))
        assert got == expected


class TestFrameBounds:
    def test_oversized_batch_splits_by_rows(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0, max_record_bytes=256)
        rows = [(k, f"padding-{k:04d}-" + "x" * 24) for k in range(16)]
        writer.log_insert_many(7, 1, list(zip(*rows)))
        writer.close()
        records = [record for record, _ in read_log(path)]
        assert len(records) > 1  # actually split
        assert all(isinstance(r, InsertManyRecord) for r in records)
        assert all(r.tid == 7 for r in records)  # halves commit together
        rebuilt = []
        for r in records:
            rebuilt.extend(zip(*r.columns))
        assert rebuilt == rows  # contiguous, order-preserving

    def test_unsplittable_row_raises_and_writes_nothing(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0, max_record_bytes=64)
        with pytest.raises(RecordTooLarge):
            writer.log_insert_many(7, 1, [(1,), ("y" * 200,)])
        writer.close()
        assert count_records(path) == 0

    def test_single_record_path_also_bounded(self, tmp_path):
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0, max_record_bytes=64)
        with pytest.raises(RecordTooLarge):
            writer.log_insert(1, 1, (1, "z" * 200))
        writer.close()
        assert count_records(path) == 0

    def test_engine_batch_beyond_frame_bound_round_trips(self, tmp_path):
        """A bulk load whose single framed record would exceed the
        64 MiB replayable bound must still recover completely — the
        writer splits it into several records under one transaction."""
        rows = [
            {"id": i, "payload": f"{i:04d}" + "p" * (1 << 20)}
            for i in range(70)  # ~70 MiB encoded, > MAX_RECORD_BYTES
        ]
        db = Database(
            str(tmp_path / "db"),
            EngineConfig(mode=DurabilityMode.LOG),
        )
        db.create_table(
            "blobs", {"id": DataType.INT64, "payload": DataType.STRING}
        )
        db.bulk_insert("blobs", rows)
        db.close()
        log = str(tmp_path / "db" / "wal.log")
        batch_records = [
            r for r, _ in read_log(log) if isinstance(r, InsertManyRecord)
        ]
        assert len(batch_records) > 1  # the bound forced a split
        reopened = Database(
            str(tmp_path / "db"), EngineConfig(mode=DurabilityMode.LOG)
        )
        result = reopened.query("blobs")
        assert result.count == len(rows)
        ids = sorted(result.column("id"))
        assert ids == list(range(70))
        reopened.close()


class TestReopenDurability:
    def test_reopen_fsyncs_inherited_tail(self, tmp_path, monkeypatch):
        """Reopening a non-empty log must fsync before trusting the
        inherited bytes: ``_synced_lsn`` starts at the file size, so a
        commit landing at-or-before it would otherwise skip its fsync
        on the strength of bytes that may only exist in the page cache
        (a promoted follower's log was written without any fsync)."""
        path = str(tmp_path / "wal.log")
        writer = LogWriter(path, group_size=0)
        writer.log_insert(1, 1, (1, "a"))
        writer._file.close()  # flushed to the OS, never fsynced

        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr("repro.wal.writer.os.fsync", counting_fsync)
        reopened = LogWriter(path)
        assert calls, "inherited tail was claimed durable without fsync"
        assert reopened.durable_lsn == os.path.getsize(path)
        reopened.close()

        calls.clear()
        empty = LogWriter(str(tmp_path / "empty.log"))
        assert not calls  # nothing inherited, nothing to fsync
        empty.close()
