"""Wire-protocol tests: codec roundtrips, framing, hostile inputs.

The decoder must be total over arbitrary bytes: every input either
yields frames, waits for more bytes, or raises
:class:`~repro.server.protocol.ProtocolError` — never crashes, never
allocates a 4 GiB buffer because a length prefix said so.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.query.predicate import (
    And,
    Between,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Ne,
    Not,
    NotNull,
    Or,
)
from repro.server import protocol
from repro.server.protocol import (
    FRAME_HEADER_BYTES,
    FrameDecoder,
    MAX_FRAME_BYTES,
    Op,
    PROTOCOL_VERSION,
    ProtocolError,
    Status,
    decode_body,
    decode_value,
    encode_frame,
    encode_value,
    pack_request,
    pack_response,
    predicate_from_wire,
    predicate_to_wire,
    unpack_request,
    unpack_response,
)

# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------


def roundtrip(value):
    return decode_body(bytes(encode_value(value)))


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2**63 - 1,
        -(2**63),
        0.0,
        -2.5,
        float("inf"),
        "",
        "héllo ⚡",
        b"",
        b"\x00\xff" * 17,
        [],
        [1, "two", None, [3.0, False]],
        {},
        {"a": 1, "b": [2, {"c": None}]},
        {1: "int key", True: "bool key", None: "null key"},
    ],
)
def test_value_roundtrip(value):
    assert roundtrip(value) == value


def test_numpy_scalars_coerce():
    assert roundtrip(np.int64(41)) == 41
    assert roundtrip(np.float64(2.5)) == 2.5
    assert roundtrip([np.int32(7)]) == [7]


def test_tuple_decodes_as_list():
    assert roundtrip((1, 2)) == [1, 2]


def test_int_out_of_i64_range_rejected():
    with pytest.raises(ProtocolError, match="int64"):
        encode_value(2**63)
    with pytest.raises(ProtocolError, match="int64"):
        encode_value(-(2**63) - 1)


def test_unencodable_type_rejected():
    with pytest.raises(ProtocolError, match="unencodable"):
        encode_value(object())


def test_trailing_bytes_rejected():
    buf = bytes(encode_value(5)) + b"\x00"
    with pytest.raises(ProtocolError, match="trailing"):
        decode_body(buf)


def test_unknown_tag_rejected():
    with pytest.raises(ProtocolError, match="unknown value tag"):
        decode_value(b"\xfe")


def test_invalid_utf8_string_rejected():
    bad = bytes([5]) + struct.pack("<I", 2) + b"\xff\xfe"
    with pytest.raises(ProtocolError, match="UTF-8"):
        decode_value(bad)


def test_truncated_value_rejected_at_every_prefix():
    buf = bytes(encode_value({"key": [1, "x", 2.0]}))
    for cut in range(len(buf)):
        with pytest.raises(ProtocolError):
            decode_body(buf[:cut])


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**63), 2**63 - 1)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=25,
)


@given(value=json_values)
@settings(max_examples=150, deadline=None)
def test_value_roundtrip_property(value):
    assert roundtrip(value) == value


@given(junk=st.binary(max_size=200))
@settings(max_examples=150, deadline=None)
def test_decoder_total_over_junk(junk):
    # Arbitrary bytes either decode or raise ProtocolError — no other
    # exception type, no hang, no absurd allocation.
    try:
        decode_body(junk)
    except ProtocolError:
        pass


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def frames_of(decoder: FrameDecoder) -> list:
    return list(decoder.frames())


def test_frame_roundtrip_byte_at_a_time():
    payloads = [b"alpha", b"", b"x" * 1000]
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    seen = []
    for i in range(len(stream)):
        decoder.feed(stream[i : i + 1])
        seen.extend(frames_of(decoder))
    assert seen == payloads
    assert decoder.pending_bytes == 0


def test_interleaved_pipelined_frames_random_segmentation():
    rng = np.random.default_rng(7)
    payloads = [bytes(encode_value({"id": i, "blob": "y" * (i * 3)})) for i in range(40)]
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    seen = []
    pos = 0
    while pos < len(stream):
        n = int(rng.integers(1, 23))
        decoder.feed(stream[pos : pos + n])
        pos += n
        seen.extend(frames_of(decoder))
    assert seen == payloads


def test_truncated_frame_waits_not_errors():
    frame = encode_frame(b"payload")
    decoder = FrameDecoder()
    decoder.feed(frame[:-1])
    assert frames_of(decoder) == []
    assert decoder.pending_bytes == len(frame) - 1
    decoder.feed(frame[-1:])
    assert frames_of(decoder) == [b"payload"]


def test_bad_crc_rejected():
    frame = bytearray(encode_frame(b"payload"))
    frame[-1] ^= 0x01
    decoder = FrameDecoder()
    decoder.feed(bytes(frame))
    with pytest.raises(ProtocolError, match="CRC"):
        frames_of(decoder)


def test_oversized_length_prefix_rejected_before_payload_arrives():
    # The header alone declares an absurd frame: rejected immediately,
    # without waiting for (or allocating) the claimed bytes.
    header = struct.pack("<II", MAX_FRAME_BYTES + 1, 0)
    decoder = FrameDecoder()
    decoder.feed(header)
    with pytest.raises(ProtocolError, match="cap"):
        frames_of(decoder)


def test_oversized_payload_rejected_at_encode():
    with pytest.raises(ProtocolError, match="cap"):
        encode_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_good_frames_before_bad_one_still_delivered():
    good = encode_frame(b"ok")
    bad = bytearray(encode_frame(b"bad"))
    bad[FRAME_HEADER_BYTES] ^= 0xFF
    decoder = FrameDecoder()
    decoder.feed(good + bytes(bad))
    it = decoder.frames()
    assert next(it) == b"ok"
    with pytest.raises(ProtocolError):
        next(it)


@given(
    payloads=st.lists(st.binary(max_size=120), max_size=8),
    chunk=st.integers(1, 64),
)
@settings(max_examples=80, deadline=None)
def test_frame_roundtrip_property(payloads, chunk):
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    seen = []
    for pos in range(0, len(stream), chunk):
        decoder.feed(stream[pos : pos + chunk])
        seen.extend(frames_of(decoder))
    assert seen == payloads


# ----------------------------------------------------------------------
# Request / response payloads
# ----------------------------------------------------------------------


def payload_of(frame: bytes) -> bytes:
    return frame[FRAME_HEADER_BYTES:]


def test_request_roundtrip():
    frame = pack_request(Op.QUERY, 99, "acme", {"table": "t"})
    request = unpack_request(payload_of(frame))
    assert request.op is Op.QUERY
    assert request.request_id == 99
    assert request.tenant == "acme"
    assert request.body == {"table": "t"}


def test_response_roundtrip():
    frame = pack_response(Op.INSERT, 7, Status.CONFLICT, "write conflict")
    response = unpack_response(payload_of(frame))
    assert response.op is Op.INSERT
    assert response.request_id == 7
    assert response.status is Status.CONFLICT
    assert not response.ok
    assert response.body == "write conflict"


def test_unknown_opcode_rejected():
    payload = bytearray(payload_of(pack_request(Op.PING, 1, "", {})))
    payload[0] = 250
    with pytest.raises(ProtocolError, match="opcode"):
        unpack_request(bytes(payload))
    with pytest.raises(ProtocolError, match="opcode"):
        unpack_response(bytes(payload))


def test_unknown_status_rejected():
    payload = bytearray(payload_of(pack_response(Op.PING, 1, Status.OK, None)))
    payload[5] = 200
    with pytest.raises(ProtocolError, match="status"):
        unpack_response(bytes(payload))


def test_truncated_request_rejected_at_every_prefix():
    payload = payload_of(pack_request(Op.INSERT, 3, "tenant", {"row": {"a": 1}}))
    for cut in range(len(payload)):
        with pytest.raises(ProtocolError):
            unpack_request(payload[:cut])


def test_hello_carries_version():
    frame = pack_request(Op.HELLO, 1, "", {"version": PROTOCOL_VERSION})
    assert unpack_request(payload_of(frame)).body["version"] == PROTOCOL_VERSION


@given(
    op=st.sampled_from(list(Op)),
    request_id=st.integers(0, 2**32 - 1),
    tenant=st.text(max_size=30),
    body=json_values,
)
@settings(max_examples=80, deadline=None)
def test_request_roundtrip_property(op, request_id, tenant, body):
    request = unpack_request(payload_of(pack_request(op, request_id, tenant, body)))
    assert (request.op, request.request_id, request.tenant, request.body) == (
        op,
        request_id,
        tenant,
        body,
    )


# ----------------------------------------------------------------------
# Predicate wire form
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "predicate",
    [
        Eq("a", 1),
        Ne("a", "x"),
        Lt("a", 3),
        Le("a", 3.5),
        Gt("a", -2),
        Ge("a", 0),
        Between("a", 1, 9),
        In("a", [3, 1, 2]),
        IsNull("a"),
        NotNull("a"),
        And(Eq("a", 1), Gt("b", 2)),
        Or(Eq("a", 1), And(Lt("b", 5), NotNull("c"))),
        Not(Between("a", 1, 2)),
    ],
)
def test_predicate_wire_roundtrip(predicate):
    wire = predicate_to_wire(predicate)
    rebuilt = predicate_from_wire(wire)
    assert predicate_to_wire(rebuilt) == wire


def test_predicate_none_passthrough():
    assert predicate_to_wire(None) is None
    assert predicate_from_wire(None) is None


@pytest.mark.parametrize(
    "wire",
    [
        "eq",
        [],
        [1, "a", 2],
        ["eq", "a"],
        ["eq", 5, 1],
        ["between", "a", 1],
        ["in", "a", "not-a-list"],
        ["frobnicate", "a", 1],
        ["not", None],
        ["and", ["eq", "a"]],
    ],
)
def test_malformed_predicate_wire_rejected(wire):
    with pytest.raises(ProtocolError):
        predicate_from_wire(wire)


def test_wire_survives_codec():
    wire = predicate_to_wire(And(Eq("a", 1), In("b", [1, 2])))
    assert protocol.decode_body(bytes(protocol.encode_value(wire))) == wire


def test_frame_header_matches_wal_discipline():
    # Same header shape as the WAL: u32 length then u32 crc32, LE.
    payload = b"abc"
    frame = encode_frame(payload)
    length, crc = struct.unpack_from("<II", frame)
    assert length == len(payload)
    assert crc == zlib.crc32(payload)
