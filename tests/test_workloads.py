"""Tests for workload generators and drivers."""

import random

import pytest

from repro.core.config import DurabilityMode
from repro.core.database import Database
from repro.workloads.generator import RowGenerator, WideRowGenerator, zipf_int
from repro.workloads.orders import OrderEntryWorkload
from repro.workloads.ycsb import TABLE, YcsbConfig, YcsbDriver

from tests.conftest import make_config


class TestGenerators:
    def test_row_generator_deterministic(self):
        a = RowGenerator(seed=1).rows(10)
        b = RowGenerator(seed=1).rows(10)
        assert a == b

    def test_row_generator_unique_ids(self):
        rows = RowGenerator().rows(100)
        ids = [r["id"] for r in rows]
        assert ids == list(range(100))

    def test_row_generator_emits_nulls(self):
        rows = RowGenerator(seed=3, null_rate=0.5).rows(200)
        nulls = sum(1 for r in rows if r["amount"] is None)
        assert 40 < nulls < 160

    def test_wide_generator_schema_matches_rows(self):
        gen = WideRowGenerator(int_cols=3, str_cols=2)
        schema = gen.schema
        row = gen.row()
        assert set(row) == set(schema.names)
        schema.validate_row(row)  # types line up

    def test_zipf_skews_low(self):
        rng = random.Random(5)
        draws = [zipf_int(rng, 1000) for _ in range(2000)]
        assert all(0 <= d < 1000 for d in draws)
        low = sum(1 for d in draws if d < 100)
        assert low > 400  # heavily skewed toward small keys


class TestYcsb:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            YcsbConfig(read_ratio=0.5, update_ratio=0.5, insert_ratio=0.5)

    @pytest.mark.parametrize("mode", [DurabilityMode.NVM, DurabilityMode.LOG])
    def test_load_and_run(self, tmp_path, mode):
        db = Database(str(tmp_path / "db"), make_config(mode))
        driver = YcsbDriver(db, YcsbConfig(records=50, seed=1))
        driver.load()
        assert db.query(TABLE).count == 50
        result = driver.run(120)
        assert result.operations == 120
        assert result.reads + result.updates + result.inserts == 120
        assert result.ops_per_second > 0
        db.close()

    def test_inserts_grow_table(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        driver = YcsbDriver(
            db,
            YcsbConfig(records=10, read_ratio=0.0, update_ratio=0.0, insert_ratio=1.0),
        )
        driver.load()
        driver.run(25)
        assert db.query(TABLE).count == 35
        db.close()

    def test_batched_transactions(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        driver = YcsbDriver(db, YcsbConfig(records=20, ops_per_txn=5))
        driver.load()
        result = driver.run(50)
        assert result.commits == 10
        db.close()


class TestOrderEntry:
    def test_populate_and_run(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        wl = OrderEntryWorkload(db, warehouses=1, customers_per_warehouse=20)
        wl.create_tables()
        wl.populate()
        assert db.query("warehouses").count == 1
        assert db.query("customers").count == 20
        stats = wl.run(40)
        assert stats.transactions == 40
        assert db.query("orders").count == stats.new_orders
        db.close()

    def test_payment_changes_balance(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NONE))
        wl = OrderEntryWorkload(db, warehouses=1, customers_per_warehouse=5, seed=2)
        wl.create_tables()
        wl.populate()
        before = sum(db.query("customers").column("c_balance"))
        for _ in range(10):
            wl.payment()
        after = sum(db.query("customers").column("c_balance"))
        assert after < before
        payments = sum(db.query("customers").column("c_payments"))
        assert payments == 10
        db.close()

    def test_survives_restart(self, tmp_path):
        db = Database(str(tmp_path / "db"), make_config(DurabilityMode.NVM))
        wl = OrderEntryWorkload(db, warehouses=1, customers_per_warehouse=10)
        wl.create_tables()
        wl.populate()
        wl.run(30)
        orders = db.query("orders").count
        lines = db.query("order_lines").count
        db = db.restart()
        assert db.query("orders").count == orders
        assert db.query("order_lines").count == lines
        db.close()


class TestBenchUtils:
    def test_timer(self):
        from repro.bench.harness import Timer

        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0

    def test_median_of(self):
        from repro.bench.harness import median_of

        values = iter([3.0, 1.0, 2.0])
        assert median_of(lambda: next(values), trials=3) == 2.0

    def test_format_table(self):
        from repro.bench.reporting import format_table

        text = format_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.0001}], title="T"
        )
        assert "T" in text
        assert "a" in text and "b" in text
        assert "10" in text

    def test_format_table_empty(self):
        from repro.bench.reporting import format_table

        assert "(no rows)" in format_table([])

    def test_format_series(self):
        from repro.bench.reporting import format_series

        text = format_series("nvm", [1, 2], [0.5, 1.0])
        assert text.startswith("nvm:")
        assert "(1, 0.5)" in text

    def test_sweep(self):
        from repro.bench.sweep import sweep

        rows = sweep("n", [1, 2], lambda n: {"square": n * n})
        assert rows == [{"n": 1, "square": 1}, {"n": 2, "square": 4}]
